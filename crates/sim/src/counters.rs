//! IB-style fabric counters and sampled time-series.
//!
//! [`FabricCounters`] is the standard consumer of the [`Probe`] hooks: it
//! maintains per-switch/per-port/per-VL counters modeled on InfiniBand's
//! PortCounters attribute —
//!
//! * `xmit_bytes`/`xmit_pkts`, `rcv_bytes`/`rcv_pkts` (PortXmitData /
//!   PortRcvData, in bytes rather than 32-bit words),
//! * `xmit_wait_ns` — time a routed packet sat at an input with the
//!   output buffer full, accounted to the *output* port it waited for
//!   (the spirit of PortXmitWait, in ns rather than ticks),
//! * `credit_stall_ns` — time an output head was ready but un-granted for
//!   lack of downstream credits, measured between arbitration instants,
//! * input/output buffer high-water marks —
//!
//! plus an optional sampled time-series: every `sample_interval_ns` of
//! simulated time it snapshots accepted throughput, in-flight packets,
//! event rate, interval latency percentiles, and the top-k hottest ports
//! into a bounded ring buffer. Everything exports to JSON (hand-rolled,
//! `std`-only) alongside the `SimReport`.
//!
//! All counters are totals over the *whole* run (warm-up included):
//! they model hardware registers, which know nothing of measurement
//! windows. Time-series samples carry their own timestamps, so a warm-up
//! cut can be applied downstream.

use crate::engine::Time;
use crate::metrics::LatencyStats;
use crate::probe::{ParProbe, Probe};
use ibfat_topology::Network;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Schema tag on the counters JSON export.
pub const COUNTERS_SCHEMA_VERSION: u32 = 1;

/// Counters for one (switch, port, VL) — or an aggregate over VLs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortVlCounters {
    /// Bytes transmitted out of this port.
    pub xmit_bytes: u64,
    /// Packets transmitted out of this port.
    pub xmit_pkts: u64,
    /// Bytes received into this port's input buffers.
    pub rcv_bytes: u64,
    /// Packets received into this port's input buffers.
    pub rcv_pkts: u64,
    /// Time packets spent routed-but-blocked waiting for *this* output
    /// port's buffer (IB PortXmitWait analogue, ns).
    pub xmit_wait_ns: u64,
    /// Time this output had a head ready but zero downstream credits,
    /// observed between arbitration instants (ns).
    pub credit_stall_ns: u64,
    /// Input-buffer occupancy high-water mark (packets).
    pub in_buf_high_water: u8,
    /// Output-buffer occupancy high-water mark (packets).
    pub out_buf_high_water: u8,
}

impl PortVlCounters {
    fn absorb(&mut self, o: &PortVlCounters) {
        self.xmit_bytes += o.xmit_bytes;
        self.xmit_pkts += o.xmit_pkts;
        self.rcv_bytes += o.rcv_bytes;
        self.rcv_pkts += o.rcv_pkts;
        self.xmit_wait_ns += o.xmit_wait_ns;
        self.credit_stall_ns += o.credit_stall_ns;
        self.in_buf_high_water = self.in_buf_high_water.max(o.in_buf_high_water);
        self.out_buf_high_water = self.out_buf_high_water.max(o.out_buf_high_water);
    }
}

/// Injection/delivery counters for one end node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    pub xmit_bytes: u64,
    pub xmit_pkts: u64,
    pub rcv_bytes: u64,
    pub rcv_pkts: u64,
}

/// One entry of a sample's top-k hottest-ports list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotPort {
    pub sw: u32,
    /// IB 1-based port number.
    pub port: u8,
    /// Bytes transmitted (delta within the sample interval for
    /// time-series entries; cumulative for [`FabricCounters::hottest_ports`]).
    pub xmit_bytes: u64,
}

/// One time-series snapshot. Interval quantities cover the span since the
/// previous sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Simulated time of the snapshot (ns).
    pub t_ns: Time,
    /// Packets delivered in the interval.
    pub delivered_pkts: u64,
    /// Bytes delivered in the interval.
    pub delivered_bytes: u64,
    /// Live packets (source queues included) at the snapshot instant.
    pub in_flight: u64,
    /// Events dispatched in the interval.
    pub events: u64,
    /// p50/p95/p99 of delivery latency within the interval (ns; zero when
    /// nothing was delivered).
    pub latency_p50_ns: u64,
    pub latency_p95_ns: u64,
    pub latency_p99_ns: u64,
    /// The interval's hottest switch ports by transmitted bytes.
    pub top_ports: Vec<HotPort>,
}

/// IB-style fabric counters plus an optional sampled time-series; plugs
/// into the simulator as a [`Probe`].
///
/// ```
/// use ibfat_topology::{Network, TreeParams};
/// use ibfat_routing::{Routing, RoutingKind};
/// use ibfat_sim::{FabricCounters, SimConfig, Simulator, TrafficPattern};
///
/// let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
/// let routing = Routing::build(&net, RoutingKind::Mlid);
/// let cfg = SimConfig::paper(1);
/// let probe = FabricCounters::new(&net, cfg.num_vls).with_sampling(10_000, 4);
/// let sim = Simulator::with_probe(
///     &net, &routing, cfg, TrafficPattern::Uniform, 0.2, 100_000, 0, probe,
/// );
/// let (report, counters) = sim.run_observed();
/// assert_eq!(counters.node_totals().xmit_pkts, report.total_generated);
/// ```
#[derive(Debug, Clone)]
pub struct FabricCounters {
    num_switches: usize,
    ports_per_switch: usize,
    num_vls: usize,

    /// Flat `[(sw * ports + port) * num_vls + vl]` counter store.
    per_vl: Vec<PortVlCounters>,
    nodes: Vec<NodeCounters>,
    /// Unroutable-packet discards per switch.
    drops: Vec<u64>,

    /// Open xmit-wait intervals, keyed like `per_vl` by the *waiting
    /// input* `(sw, in_port, vl)` (`Time::MAX` = none open; at most one
    /// routed head can wait per input VL).
    wait_start: Vec<Time>,
    /// The output port each open wait is charged to.
    wait_out: Vec<u8>,
    /// Open credit-stall intervals, keyed by the stalled *output*
    /// `(sw, port, vl)` (`Time::MAX` = none open).
    stall_start: Vec<Time>,

    // --- time-series ---
    /// Sampling period in simulated ns; 0 disables the time-series.
    sample_interval_ns: u64,
    /// Ring capacity; the oldest sample is dropped beyond this.
    max_samples: usize,
    /// Hottest-ports list length per sample.
    top_k: usize,
    next_sample: Time,
    samples: VecDeque<Sample>,
    samples_dropped: u64,
    interval_delivered_pkts: u64,
    interval_delivered_bytes: u64,
    interval_events: u64,
    interval_latency: LatencyStats,
    /// Cumulative per-port (VL-summed) transmitted bytes, for top-k deltas.
    port_xmit_bytes: Vec<u64>,
    /// `port_xmit_bytes` as of the previous sample.
    last_port_xmit: Vec<u64>,
    /// Most recent in-flight count seen by `tick` (for the final sample).
    last_in_flight: u64,

    end_time: Time,
}

impl FabricCounters {
    /// Counters sized for `net`, time-series disabled.
    pub fn new(net: &Network, num_vls: u8) -> FabricCounters {
        let num_switches = net.num_switches();
        let ports = net.params().m() as usize;
        let num_vls = num_vls as usize;
        let cells = num_switches * ports * num_vls;
        FabricCounters {
            num_switches,
            ports_per_switch: ports,
            num_vls,
            per_vl: vec![PortVlCounters::default(); cells],
            nodes: vec![NodeCounters::default(); net.num_nodes()],
            drops: vec![0; num_switches],
            wait_start: vec![Time::MAX; cells],
            wait_out: vec![0; cells],
            stall_start: vec![Time::MAX; cells],
            sample_interval_ns: 0,
            max_samples: 4096,
            top_k: 4,
            next_sample: Time::MAX,
            samples: VecDeque::new(),
            samples_dropped: 0,
            interval_delivered_pkts: 0,
            interval_delivered_bytes: 0,
            interval_events: 0,
            interval_latency: LatencyStats::new(),
            port_xmit_bytes: vec![0; num_switches * ports],
            last_port_xmit: vec![0; num_switches * ports],
            last_in_flight: 0,
            end_time: 0,
        }
    }

    /// Enable the time-series: snapshot every `interval_ns` of simulated
    /// time, listing the `top_k` hottest ports per sample.
    ///
    /// # Panics
    /// Panics if `interval_ns` is zero.
    pub fn with_sampling(mut self, interval_ns: u64, top_k: usize) -> FabricCounters {
        assert!(interval_ns > 0, "sample interval must be positive");
        self.sample_interval_ns = interval_ns;
        self.top_k = top_k;
        self.next_sample = interval_ns;
        self
    }

    /// Bound the sample ring (default 4096); the oldest samples are
    /// dropped beyond this and counted in
    /// [`samples_dropped`](FabricCounters::samples_dropped).
    pub fn with_sample_capacity(mut self, cap: usize) -> FabricCounters {
        self.max_samples = cap.max(1);
        self
    }

    #[inline]
    fn cell(&self, sw: u32, port: u8, vl: u8) -> usize {
        debug_assert!((port as usize) < self.ports_per_switch && (vl as usize) < self.num_vls);
        (sw as usize * self.ports_per_switch + port as usize) * self.num_vls + vl as usize
    }

    #[inline]
    fn pcell(&self, sw: u32, port: u8) -> usize {
        sw as usize * self.ports_per_switch + port as usize
    }

    // ----- accessors ----------------------------------------------------

    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    pub fn ports_per_switch(&self) -> usize {
        self.ports_per_switch
    }

    pub fn num_vls(&self) -> usize {
        self.num_vls
    }

    /// Simulated end time recorded by [`finish`](Probe::finish).
    pub fn end_time_ns(&self) -> Time {
        self.end_time
    }

    /// Counters of one (switch, 0-based port, VL).
    pub fn port_vl(&self, sw: u32, port: u8, vl: u8) -> &PortVlCounters {
        &self.per_vl[self.cell(sw, port, vl)]
    }

    /// VL-aggregated counters of one (switch, 0-based port).
    pub fn port(&self, sw: u32, port: u8) -> PortVlCounters {
        let mut out = PortVlCounters::default();
        for vl in 0..self.num_vls {
            out.absorb(&self.per_vl[self.cell(sw, port, vl as u8)]);
        }
        out
    }

    /// Counters of one end node.
    pub fn node(&self, node: u32) -> &NodeCounters {
        &self.nodes[node as usize]
    }

    /// Unroutable-packet discards at one switch.
    pub fn drops(&self, sw: u32) -> u64 {
        self.drops[sw as usize]
    }

    /// Fabric-wide totals over all switch ports.
    pub fn switch_totals(&self) -> PortVlCounters {
        let mut out = PortVlCounters::default();
        for c in &self.per_vl {
            out.absorb(c);
        }
        out
    }

    /// Fabric-wide totals over all end nodes.
    pub fn node_totals(&self) -> NodeCounters {
        let mut out = NodeCounters::default();
        for n in &self.nodes {
            out.xmit_bytes += n.xmit_bytes;
            out.xmit_pkts += n.xmit_pkts;
            out.rcv_bytes += n.rcv_bytes;
            out.rcv_pkts += n.rcv_pkts;
        }
        out
    }

    /// Total discards over all switches.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// The `k` switch ports with the most transmitted bytes over the run,
    /// descending; ties break toward the lower `(sw, port)` so the order
    /// is deterministic. Idle ports are never listed.
    pub fn hottest_ports(&self, k: usize) -> Vec<HotPort> {
        self.top_by(k, |i| self.port_xmit_bytes[i])
    }

    /// The `k` switch ports with the most `xmit_wait_ns` — where routed
    /// packets queued for the longest. This is the congestion signal: on
    /// a hot-spot workload these are the saturated root/up ports. The
    /// returned `xmit_bytes` field carries the wait time (ns).
    pub fn most_congested_ports(&self, k: usize) -> Vec<HotPort> {
        self.top_by(k, |i| {
            let base = i * self.num_vls;
            self.per_vl[base..base + self.num_vls]
                .iter()
                .map(|c| c.xmit_wait_ns)
                .sum()
        })
    }

    fn top_by(&self, k: usize, metric: impl Fn(usize) -> u64) -> Vec<HotPort> {
        let mut ranked: Vec<(u64, usize)> = (0..self.num_switches * self.ports_per_switch)
            .filter_map(|i| {
                let m = metric(i);
                (m > 0).then_some((m, i))
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        ranked.truncate(k);
        ranked
            .into_iter()
            .map(|(m, i)| HotPort {
                sw: (i / self.ports_per_switch) as u32,
                port: (i % self.ports_per_switch) as u8 + 1,
                xmit_bytes: m,
            })
            .collect()
    }

    /// The recorded time-series (empty unless sampling was enabled).
    pub fn samples(&self) -> &VecDeque<Sample> {
        &self.samples
    }

    /// Samples evicted from the ring because it was full.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    pub fn sample_interval_ns(&self) -> u64 {
        self.sample_interval_ns
    }

    // ----- sampling internals -------------------------------------------

    fn flush_sample(&mut self, now: Time, in_flight: u64) {
        let mut deltas: Vec<(u64, usize)> = self
            .port_xmit_bytes
            .iter()
            .zip(&self.last_port_xmit)
            .enumerate()
            .filter_map(|(i, (cur, last))| {
                let d = cur - last;
                (d > 0).then_some((d, i))
            })
            .collect();
        deltas.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        deltas.truncate(self.top_k);
        let top_ports = deltas
            .into_iter()
            .map(|(d, i)| HotPort {
                sw: (i / self.ports_per_switch) as u32,
                port: (i % self.ports_per_switch) as u8 + 1,
                xmit_bytes: d,
            })
            .collect();
        let p = self.interval_latency.percentiles();
        if self.samples.len() == self.max_samples {
            self.samples.pop_front();
            self.samples_dropped += 1;
        }
        self.samples.push_back(Sample {
            t_ns: now,
            delivered_pkts: self.interval_delivered_pkts,
            delivered_bytes: self.interval_delivered_bytes,
            in_flight,
            events: self.interval_events,
            latency_p50_ns: p.p50,
            latency_p95_ns: p.p95,
            latency_p99_ns: p.p99,
            top_ports,
        });
        self.interval_delivered_pkts = 0;
        self.interval_delivered_bytes = 0;
        self.interval_events = 0;
        self.interval_latency = LatencyStats::new();
        self.last_port_xmit.copy_from_slice(&self.port_xmit_bytes);
        // Re-align to the grid; a quiet stretch yields one late sample
        // covering the whole gap, not a burst of empty ones.
        self.next_sample = (now / self.sample_interval_ns + 1) * self.sample_interval_ns;
    }

    // ----- JSON export --------------------------------------------------

    /// Serialize everything to JSON (hand-rolled, `std`-only; schema
    /// documented in EXPERIMENTS.md § Observability). Per-VL breakdowns
    /// are included only when more than one VL is in use.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        let _ = write!(
            s,
            "{{\"schema\":{},\"end_time_ns\":{},\"num_vls\":{},\
             \"sample_interval_ns\":{},\"samples_dropped\":{}",
            COUNTERS_SCHEMA_VERSION,
            self.end_time,
            self.num_vls,
            self.sample_interval_ns,
            self.samples_dropped
        );

        s.push_str(",\"switches\":[");
        for sw in 0..self.num_switches as u32 {
            if sw > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"sw\":{},\"drops\":{},\"ports\":[",
                sw,
                self.drops(sw)
            );
            for port in 0..self.ports_per_switch as u8 {
                if port > 0 {
                    s.push(',');
                }
                let agg = self.port(sw, port);
                let _ = write!(s, "{{\"port\":{}", port + 1);
                write_counter_fields(&mut s, &agg);
                if self.num_vls > 1 {
                    s.push_str(",\"vls\":[");
                    for vl in 0..self.num_vls as u8 {
                        if vl > 0 {
                            s.push(',');
                        }
                        let _ = write!(s, "{{\"vl\":{vl}");
                        write_counter_fields(&mut s, self.port_vl(sw, port, vl));
                        s.push('}');
                    }
                    s.push(']');
                }
                s.push('}');
            }
            s.push_str("]}");
        }
        s.push(']');

        s.push_str(",\"nodes\":[");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"node\":{i},\"xmit_bytes\":{},\"xmit_pkts\":{},\
                 \"rcv_bytes\":{},\"rcv_pkts\":{}}}",
                n.xmit_bytes, n.xmit_pkts, n.rcv_bytes, n.rcv_pkts
            );
        }
        s.push(']');

        s.push_str(",\"samples\":[");
        for (i, sm) in self.samples.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"t_ns\":{},\"delivered_pkts\":{},\"delivered_bytes\":{},\
                 \"in_flight\":{},\"events\":{},\"latency_p50_ns\":{},\
                 \"latency_p95_ns\":{},\"latency_p99_ns\":{},\"top_ports\":[",
                sm.t_ns,
                sm.delivered_pkts,
                sm.delivered_bytes,
                sm.in_flight,
                sm.events,
                sm.latency_p50_ns,
                sm.latency_p95_ns,
                sm.latency_p99_ns
            );
            for (j, h) in sm.top_ports.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"sw\":{},\"port\":{},\"xmit_bytes\":{}}}",
                    h.sw, h.port, h.xmit_bytes
                );
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

fn write_counter_fields(s: &mut String, c: &PortVlCounters) {
    let _ = write!(
        s,
        ",\"xmit_bytes\":{},\"xmit_pkts\":{},\"rcv_bytes\":{},\"rcv_pkts\":{},\
         \"xmit_wait_ns\":{},\"credit_stall_ns\":{},\
         \"in_buf_high_water\":{},\"out_buf_high_water\":{}",
        c.xmit_bytes,
        c.xmit_pkts,
        c.rcv_bytes,
        c.rcv_pkts,
        c.xmit_wait_ns,
        c.credit_stall_ns,
        c.in_buf_high_water,
        c.out_buf_high_water
    );
}

impl Probe for FabricCounters {
    const COUNTERS: bool = true;
    const TIMING: bool = false;

    #[inline]
    fn node_xmit(&mut self, _now: Time, node: u32, _vl: u8, bytes: u32) {
        let n = &mut self.nodes[node as usize];
        n.xmit_bytes += u64::from(bytes);
        n.xmit_pkts += 1;
    }

    #[inline]
    fn node_rcv(&mut self, _now: Time, node: u32, _vl: u8, bytes: u32, latency_ns: u64) {
        let n = &mut self.nodes[node as usize];
        n.rcv_bytes += u64::from(bytes);
        n.rcv_pkts += 1;
        if self.sample_interval_ns > 0 {
            self.interval_delivered_pkts += 1;
            self.interval_delivered_bytes += u64::from(bytes);
            self.interval_latency.record(latency_ns);
        }
    }

    #[inline]
    fn sw_rcv(&mut self, _now: Time, sw: u32, port: u8, vl: u8, bytes: u32, depth: u8) {
        let c = &mut self.per_vl
            [(sw as usize * self.ports_per_switch + port as usize) * self.num_vls + vl as usize];
        c.rcv_bytes += u64::from(bytes);
        c.rcv_pkts += 1;
        c.in_buf_high_water = c.in_buf_high_water.max(depth);
    }

    #[inline]
    fn sw_xmit(&mut self, _now: Time, sw: u32, port: u8, vl: u8, bytes: u32) {
        let cell = self.cell(sw, port, vl);
        let c = &mut self.per_vl[cell];
        c.xmit_bytes += u64::from(bytes);
        c.xmit_pkts += 1;
        let p = self.pcell(sw, port);
        self.port_xmit_bytes[p] += u64::from(bytes);
    }

    #[inline]
    fn sw_drop(&mut self, _now: Time, sw: u32) {
        self.drops[sw as usize] += 1;
    }

    #[inline]
    fn out_buffer_depth(&mut self, sw: u32, port: u8, vl: u8, depth: u8) {
        let cell = self.cell(sw, port, vl);
        let c = &mut self.per_vl[cell];
        c.out_buf_high_water = c.out_buf_high_water.max(depth);
    }

    #[inline]
    fn xmit_wait_start(&mut self, now: Time, sw: u32, in_port: u8, vl: u8, out_port: u8) {
        let cell = self.cell(sw, in_port, vl);
        debug_assert_eq!(self.wait_start[cell], Time::MAX, "nested xmit wait");
        self.wait_start[cell] = now;
        self.wait_out[cell] = out_port;
    }

    #[inline]
    fn xmit_wait_end(&mut self, now: Time, sw: u32, in_port: u8, vl: u8) {
        let cell = self.cell(sw, in_port, vl);
        let start = self.wait_start[cell];
        debug_assert_ne!(start, Time::MAX, "xmit wait ended without start");
        self.wait_start[cell] = Time::MAX;
        let out_cell = self.cell(sw, self.wait_out[cell], vl);
        self.per_vl[out_cell].xmit_wait_ns += now - start;
    }

    #[inline]
    fn credit_stall_start(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        let cell = self.cell(sw, port, vl);
        // Arbitration re-observes an ongoing stall; only the first
        // observation opens the interval.
        if self.stall_start[cell] == Time::MAX {
            self.stall_start[cell] = now;
        }
    }

    #[inline]
    fn credit_stall_end(&mut self, now: Time, sw: u32, port: u8, vl: u8) {
        let cell = self.cell(sw, port, vl);
        let start = self.stall_start[cell];
        if start != Time::MAX {
            self.stall_start[cell] = Time::MAX;
            self.per_vl[cell].credit_stall_ns += now - start;
        }
    }

    #[inline]
    fn tick(&mut self, now: Time, in_flight: usize) {
        if self.sample_interval_ns > 0 {
            self.interval_events += 1;
            self.last_in_flight = in_flight as u64;
            if now >= self.next_sample {
                self.flush_sample(now, in_flight as u64);
            }
        }
    }

    fn finish(&mut self, now: Time) {
        self.end_time = now;
        // Close every open wait/stall interval at the end of the run so
        // a saturated fabric is not under-counted.
        for cell in 0..self.per_vl.len() {
            let ws = self.wait_start[cell];
            if ws != Time::MAX {
                self.wait_start[cell] = Time::MAX;
                let sw = (cell / self.num_vls / self.ports_per_switch) as u32;
                let vl = (cell % self.num_vls) as u8;
                let out_cell = self.cell(sw, self.wait_out[cell], vl);
                self.per_vl[out_cell].xmit_wait_ns += now - ws;
            }
            let ss = self.stall_start[cell];
            if ss != Time::MAX {
                self.stall_start[cell] = Time::MAX;
                self.per_vl[cell].credit_stall_ns += now - ss;
            }
        }
        if self.sample_interval_ns > 0
            && (self.interval_events > 0
                || self.interval_delivered_pkts > 0
                || self.port_xmit_bytes != self.last_port_xmit)
        {
            self.flush_sample(now, self.last_in_flight);
        }
    }
}

/// Parallel-engine support: each shard gets a full-fabric-sized child (a
/// shard only ever touches the cells of devices it owns, so the sums are
/// disjoint and absorption is exact for every register-style counter —
/// per-port/per-VL counters, node counters, drops, cumulative port
/// bytes). Open wait/stall intervals are closed by each shard's `finish`
/// at the globally agreed end time before absorption, which matches the
/// sequential closure exactly.
///
/// The *time-series* is the one approximate surface: each shard samples
/// its own event stream, so `in_flight`/`events` in merged samples are
/// shard-local and the merged ring is the time-ordered interleaving of
/// per-shard samples, not a sequence of global snapshots. Register
/// counters and totals remain bit-exact.
impl ParProbe for FabricCounters {
    fn fork(&self) -> Self {
        let cells = self.per_vl.len();
        let pcells = self.port_xmit_bytes.len();
        FabricCounters {
            num_switches: self.num_switches,
            ports_per_switch: self.ports_per_switch,
            num_vls: self.num_vls,
            per_vl: vec![PortVlCounters::default(); cells],
            nodes: vec![NodeCounters::default(); self.nodes.len()],
            drops: vec![0; self.num_switches],
            wait_start: vec![Time::MAX; cells],
            wait_out: vec![0; cells],
            stall_start: vec![Time::MAX; cells],
            sample_interval_ns: self.sample_interval_ns,
            max_samples: self.max_samples,
            top_k: self.top_k,
            next_sample: if self.sample_interval_ns > 0 {
                self.sample_interval_ns
            } else {
                Time::MAX
            },
            samples: VecDeque::new(),
            samples_dropped: 0,
            interval_delivered_pkts: 0,
            interval_delivered_bytes: 0,
            interval_events: 0,
            interval_latency: LatencyStats::new(),
            port_xmit_bytes: vec![0; pcells],
            last_port_xmit: vec![0; pcells],
            last_in_flight: 0,
            end_time: 0,
        }
    }

    fn absorb(&mut self, child: Self) {
        debug_assert_eq!(self.per_vl.len(), child.per_vl.len());
        for (c, o) in self.per_vl.iter_mut().zip(&child.per_vl) {
            c.absorb(o);
        }
        for (n, o) in self.nodes.iter_mut().zip(&child.nodes) {
            n.xmit_bytes += o.xmit_bytes;
            n.xmit_pkts += o.xmit_pkts;
            n.rcv_bytes += o.rcv_bytes;
            n.rcv_pkts += o.rcv_pkts;
        }
        for (d, o) in self.drops.iter_mut().zip(&child.drops) {
            *d += o;
        }
        for (p, o) in self.port_xmit_bytes.iter_mut().zip(&child.port_xmit_bytes) {
            *p += o;
        }
        self.end_time = self.end_time.max(child.end_time);
        self.samples_dropped += child.samples_dropped;
        // Interleave shard sample streams in time order (stable, so a
        // tie keeps already-absorbed shards first — shard order is the
        // deterministic tiebreak).
        self.samples.extend(child.samples);
        self.samples
            .make_contiguous()
            .sort_by_key(|s: &Sample| s.t_ns);
        while self.samples.len() > self.max_samples {
            self.samples.pop_front();
            self.samples_dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    fn counters() -> FabricCounters {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        FabricCounters::new(&net, 2)
    }

    #[test]
    fn xmit_wait_charged_to_output_port() {
        let mut c = counters();
        c.xmit_wait_start(100, 3, 0, 1, 2); // input port 0 waits for output 2
        c.xmit_wait_end(350, 3, 0, 1);
        assert_eq!(c.port_vl(3, 2, 1).xmit_wait_ns, 250);
        assert_eq!(c.port_vl(3, 0, 1).xmit_wait_ns, 0);
    }

    #[test]
    fn credit_stall_first_observation_wins() {
        let mut c = counters();
        c.credit_stall_start(100, 0, 1, 0);
        c.credit_stall_start(180, 0, 1, 0); // re-observed, must not reset
        c.credit_stall_end(300, 0, 1, 0);
        assert_eq!(c.port_vl(0, 1, 0).credit_stall_ns, 200);
        // An end without a start is a no-op.
        c.credit_stall_end(400, 0, 1, 0);
        assert_eq!(c.port_vl(0, 1, 0).credit_stall_ns, 200);
    }

    #[test]
    fn finish_closes_open_intervals() {
        let mut c = counters();
        c.xmit_wait_start(100, 1, 3, 0, 2);
        c.credit_stall_start(150, 1, 2, 0);
        c.finish(500);
        assert_eq!(c.port_vl(1, 2, 0).xmit_wait_ns, 400);
        assert_eq!(c.port_vl(1, 2, 0).credit_stall_ns, 350);
        assert_eq!(c.end_time_ns(), 500);
    }

    #[test]
    fn sampling_flushes_on_interval_and_finish() {
        let mut c = counters().with_sampling(1_000, 2);
        c.tick(10, 1);
        c.sw_xmit(10, 0, 2, 0, 256);
        c.node_rcv(500, 1, 0, 256, 480);
        c.tick(1_500, 3); // crosses the 1_000 boundary → sample
        assert_eq!(c.samples().len(), 1);
        let s = &c.samples()[0];
        assert_eq!(s.t_ns, 1_500);
        assert_eq!(s.delivered_pkts, 1);
        assert_eq!(s.in_flight, 3);
        assert_eq!(s.top_ports.len(), 1);
        assert_eq!((s.top_ports[0].sw, s.top_ports[0].port), (0, 3));
        assert!(s.latency_p50_ns >= 480);
        // Partial tail flushed by finish.
        c.sw_xmit(1_600, 0, 1, 0, 256);
        c.finish(1_700);
        assert_eq!(c.samples().len(), 2);
        assert_eq!(c.samples()[1].top_ports[0].port, 2);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut c = counters().with_sampling(10, 1).with_sample_capacity(3);
        for i in 1..=6u64 {
            c.tick(i * 10, 0); // each tick lands on a boundary → 6 flushes
        }
        assert_eq!(c.samples().len(), 3);
        assert_eq!(c.samples_dropped(), 3);
        assert_eq!(c.samples()[0].t_ns, 40);
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let mut c = counters();
        c.sw_xmit(0, 2, 1, 0, 256);
        c.sw_xmit(0, 1, 3, 0, 256);
        c.sw_xmit(0, 1, 3, 0, 256);
        c.sw_xmit(0, 2, 0, 0, 256);
        let hot = c.hottest_ports(10);
        assert_eq!(hot.len(), 3);
        assert_eq!((hot[0].sw, hot[0].port, hot[0].xmit_bytes), (1, 4, 512));
        // Tied ports order by (sw, port).
        assert_eq!((hot[1].sw, hot[1].port), (2, 1));
        assert_eq!((hot[2].sw, hot[2].port), (2, 2));
    }

    #[test]
    fn json_has_schema_and_balanced_braces() {
        let mut c = counters().with_sampling(100, 2);
        c.sw_xmit(10, 0, 0, 1, 256);
        c.node_xmit(10, 0, 1, 256);
        c.tick(150, 1);
        c.finish(200);
        let json = c.to_json();
        assert!(json.starts_with("{\"schema\":1,"));
        assert!(json.contains("\"switches\":["));
        assert!(json.contains("\"vls\":[")); // 2 VLs → per-VL breakdown
        assert!(json.contains("\"samples\":["));
        let open = json.chars().filter(|&ch| ch == '{').count();
        let close = json.chars().filter(|&ch| ch == '}').count();
        assert_eq!(open, close);
        let o = json.chars().filter(|&ch| ch == '[').count();
        let cl = json.chars().filter(|&ch| ch == ']').count();
        assert_eq!(o, cl);
    }
}
