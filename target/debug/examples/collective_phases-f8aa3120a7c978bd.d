/root/repo/target/debug/examples/collective_phases-f8aa3120a7c978bd.d: examples/collective_phases.rs

/root/repo/target/debug/examples/collective_phases-f8aa3120a7c978bd: examples/collective_phases.rs

examples/collective_phases.rs:
