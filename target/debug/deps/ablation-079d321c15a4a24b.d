/root/repo/target/debug/deps/ablation-079d321c15a4a24b.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-079d321c15a4a24b.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
