//! Offline stub of `rand` 0.8.
//!
//! Implements the trait surface the workspace uses — [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension with `gen_range` /
//! `gen_bool` — with the same algorithms as upstream where it matters
//! for distribution quality (PCG-based `seed_from_u64` seeding,
//! widening-multiply rejection sampling for integer ranges, 53-bit
//! mantissa floats). Determinism is the contract; numeric identity with
//! upstream `rand` is not guaranteed.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with a PCG32 stream, as
    /// `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        if p >= 1.0 {
            // Consume a draw anyway so call sequences stay aligned.
            let _ = self.next_u64();
            return true;
        }
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
    fn is_empty(&self) -> bool {
        !(self.start < self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
    fn is_empty(&self) -> bool {
        !(self.start() <= self.end())
    }
}

macro_rules! uniform_int {
    ($($t:ty => $unsigned:ty => $large:ty => $gen:ident),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                // Width of the sampled interval minus one, in the
                // unsigned domain (wrapping handles signed types).
                let span = if inclusive {
                    (high as $unsigned).wrapping_sub(low as $unsigned)
                } else {
                    (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_sub(1)
                };
                if span == <$unsigned>::MAX {
                    // Full domain: any draw is uniform.
                    return rng.$gen() as $t;
                }
                let range = span.wrapping_add(1);
                // Lemire's widening-multiply method with rejection, as in
                // upstream rand 0.8.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$gen() as $unsigned;
                    let m = (v as $large) * (range as $large);
                    let lo = m as $unsigned;
                    if lo <= zone {
                        let hi = (m >> <$unsigned>::BITS) as $unsigned;
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}

uniform_int!(
    u8 => u8 => u16 => next_u32,
    u16 => u16 => u32 => next_u32,
    u32 => u32 => u64 => next_u32,
    u64 => u64 => u128 => next_u64,
    usize => usize => u128 => next_u64,
    i8 => u8 => u16 => next_u32,
    i16 => u16 => u32 => next_u32,
    i32 => u32 => u64 => next_u32,
    i64 => u64 => u128 => next_u64,
    isize => usize => u128 => next_u64,
);

macro_rules! uniform_float {
    ($($t:ty => $bits:expr),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                _inclusive: bool,
            ) -> $t {
                let mut scale = high - low;
                loop {
                    // A uniform draw in [0, 1) with a full mantissa.
                    let unit =
                        (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                    let res = unit * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding produced `high`; tighten and retry so the
                    // half-open contract holds.
                    scale *= 1.0 - <$t>::EPSILON;
                }
            }
        }
    )*};
}

uniform_float!(f32 => 24, f64 => 53);

pub mod rngs {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of rand's `SliceRandom`: Fisher–Yates shuffle.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_index(rng, self.len())])
            }
        }
    }

    fn uniform_index<R: RngCore + ?Sized>(rng: &mut R, bound: usize) -> usize {
        ((u128::from(rng.next_u64()) * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..17);
            assert!(v < 17);
            let w = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
