/root/repo/target/debug/deps/ibfat_cli-e8141e25ea9d16f2.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libibfat_cli-e8141e25ea9d16f2.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
