/root/repo/target/debug/deps/persistence-36532cfe06b859e7.d: crates/core/tests/persistence.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence-36532cfe06b859e7.rmeta: crates/core/tests/persistence.rs Cargo.toml

crates/core/tests/persistence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
