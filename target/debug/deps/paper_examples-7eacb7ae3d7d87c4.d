/root/repo/target/debug/deps/paper_examples-7eacb7ae3d7d87c4.d: tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-7eacb7ae3d7d87c4.rmeta: tests/paper_examples.rs

tests/paper_examples.rs:
