//! The Single LID (SLID) baseline scheme the paper evaluates against.
//!
//! Each node owns exactly one LID (`PID + 1`, i.e. LMC = 0). Forwarding
//! tables are built "based on the consideration of evenly distributing
//! possible traffic over available paths": descending entries are forced
//! (Equation 1 — the down path is unique), and climbing entries spread the
//! *destinations* across the up-ports by reading a digit of the
//! destination's PID — the classical d-mod-k placement. All packets to a
//! given destination from a given switch share one fixed path, which is
//! precisely the hot-spot weakness (the paper's Figure 9(a)) that MLID
//! removes.

use crate::{Lft, Lid, LidSpace, MlidScheme, RoutingScheme};
use ibfat_topology::{Network, NodeId, NodeLabel, SwitchLabel};

/// The SLID scheme (stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct SlidScheme;

impl RoutingScheme for SlidScheme {
    fn name(&self) -> &'static str {
        "SLID"
    }

    fn lid_space(&self, net: &Network) -> LidSpace {
        LidSpace::new(net.params().num_nodes(), 0)
    }

    fn build_lfts(&self, net: &Network, space: &LidSpace) -> Vec<Lft> {
        let params = net.params();
        let max_lid = space.max_lid();
        let mut lfts = Vec::with_capacity(net.num_switches());
        for sw in SwitchLabel::all(params) {
            let level = sw.level().index();
            let mut lft = Lft::new(max_lid);
            for node in NodeLabel::all(params) {
                let lid = space.base_lid(node.id(params));
                let below = (0..level).all(|i| sw.digit(i) == node.digit(i));
                let port = if below {
                    MlidScheme::eq1_down_port(&node, level)
                } else {
                    // Spread destinations over the up-ports: with LMC = 0,
                    // `lid - 1` is the destination PID, so Equation (2)'s
                    // digit extraction becomes d-mod-k on the destination.
                    MlidScheme::eq2_up_port(params, lid, level as u32)
                };
                lft.set(lid, port);
            }
            lfts.push(lft);
        }
        lfts
    }

    fn select_dlid(&self, _net: &Network, space: &LidSpace, _src: NodeId, dst: NodeId) -> Lid {
        space.base_lid(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::{Level, PortNum, TreeParams};

    fn setup() -> (TreeParams, Network, LidSpace, Vec<Lft>) {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let space = SlidScheme.lid_space(&net);
        let lfts = SlidScheme.build_lfts(&net, &space);
        (params, net, space, lfts)
    }

    #[test]
    fn one_lid_per_node() {
        let (_, _, space, _) = setup();
        assert_eq!(space.lmc(), 0);
        assert_eq!(space.lids_per_node(), 1);
        assert_eq!(space.max_lid(), Lid(16));
        assert_eq!(space.base_lid(NodeId(7)), Lid(8)); // PID + 1
    }

    #[test]
    fn destinations_spread_over_up_ports() {
        // At a leaf switch, the up-entries for the node LIDs must use every
        // up-port equally often (8 climbing destinations over 2 up-ports
        // for SW<00,2> in FT(4,3): destinations below it are P(000),P(001);
        // the other 14 climb).
        let (params, _, space, lfts) = setup();
        let sw = SwitchLabel::new(params, &[0, 0], Level(2)).unwrap();
        let lft = &lfts[sw.id(params).index()];
        let mut counts = [0u32; 2];
        for node in 0..space.num_nodes() {
            let lid = space.base_lid(NodeId(node));
            let port = lft.get(lid).unwrap();
            if u32::from(port.0) > params.half() {
                counts[(u32::from(port.0) - params.half() - 1) as usize] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<u32>(), 14);
        assert_eq!(counts[0], 7);
        assert_eq!(counts[1], 7);
    }

    #[test]
    fn same_destination_same_path_from_any_source() {
        // SLID's defining limitation: the DLID is the same for every
        // source, so the up-port chosen at a shared switch is identical.
        let (params, _, space, lfts) = setup();
        let dst = NodeId(15);
        let lid = space.base_lid(dst);
        let leaf = SwitchLabel::new(params, &[0, 0], Level(2)).unwrap();
        let port_for_everyone = lfts[leaf.id(params).index()].get(lid).unwrap();
        assert!(u32::from(port_for_everyone.0) > params.half());
        // There is exactly one entry for dst at this switch — no way to
        // differentiate sources.
        assert_eq!(port_for_everyone, PortNum(port_for_everyone.0));
    }

    #[test]
    fn down_entries_follow_equation_1() {
        let (params, _, space, lfts) = setup();
        let root = SwitchLabel::new(params, &[1, 1], Level(0)).unwrap();
        let lft = &lfts[root.id(params).index()];
        for node in NodeLabel::all(params) {
            let lid = space.base_lid(node.id(params));
            assert_eq!(lft.get(lid).unwrap(), PortNum(node.digit(0) + 1));
        }
    }
}
