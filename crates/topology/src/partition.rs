//! Shard partitioning of the switch set for parallel simulation.
//!
//! The parallel engine assigns every switch (and, transitively, every
//! node behind a leaf switch) to one shard per worker thread. Two
//! partitioners are provided:
//!
//! * [`block_switch_partition`] — the id-order block split used since the
//!   first parallel engine. Cheap and total, but oblivious to the wiring:
//!   in level-major id order a block boundary routinely separates a leaf
//!   switch from every ancestor it talks to, so most packets cross shards.
//! * [`fat_tree_switch_partition`] — fat-tree-aware: leaf switches are
//!   block-partitioned in leaf order (keeping each leaf's nodes with it),
//!   then upper levels are assigned bottom-up, each switch joining the
//!   shard that owns the majority of its down-neighbors. Subtrees stay
//!   intact, so only the top-of-tree links whose endpoints genuinely
//!   serve several shards are cut.
//!
//! [`switch_edge_cut`] reports the quality metric both are judged by: the
//! number of switch-to-switch cables whose endpoints land in different
//! shards. Every cut cable is a potential cross-shard message lane in the
//! simulator; fewer cuts means less synchronization traffic.

use crate::{DeviceRef, Network, SwitchId};

/// Assign `num_switches` switches to `shards` shards in id-order blocks.
///
/// Shard of switch `s` is `s * shards / num_switches`: contiguous,
/// total, and balanced to within one switch. This is the fallback when
/// the topology-aware partitioner cannot run (more shards than leaf
/// switches, or a degenerate tree).
pub fn block_switch_partition(num_switches: usize, shards: usize) -> Vec<u32> {
    assert!(shards > 0, "at least one shard");
    assert!(num_switches > 0, "at least one switch");
    (0..num_switches)
        .map(|s| (s * shards / num_switches) as u32)
        .collect()
}

/// Fat-tree-aware shard assignment for the switches of `net`.
///
/// Leaf switches (level `n-1`) are split into `shards` contiguous blocks
/// by leaf index — each leaf keeps its processing nodes, which the
/// caller co-locates by following the edge cables. Upper levels are then
/// processed from level `n-2` up to the roots; every switch joins the
/// shard owning the **majority of its down-neighbors** (its peers one
/// level below), with ties broken toward the shard with fewer switches
/// so far, then toward the smaller shard id. The result is total and
/// deterministic, and every shard owns at least one leaf.
///
/// Falls back to [`block_switch_partition`] when `shards` exceeds the
/// number of leaf switches (the leaf-block split could not give every
/// shard a leaf, and with so few switches per shard the block split's
/// cut is no worse).
pub fn fat_tree_switch_partition(net: &Network, shards: usize) -> Vec<u32> {
    assert!(shards > 0, "at least one shard");
    let params = net.params();
    let num_switches = net.num_switches();
    let n = params.n();
    let leaf_level = n - 1;
    let leaf_base = params.level_offset(leaf_level) as usize;
    let num_leaves = num_switches - leaf_base;
    if shards > num_leaves {
        return block_switch_partition(num_switches, shards);
    }

    const UNASSIGNED: u32 = u32::MAX;
    let mut assign = vec![UNASSIGNED; num_switches];
    let mut population = vec![0usize; shards];

    // Leaves: block partition in leaf order.
    for leaf in 0..num_leaves {
        let shard = (leaf * shards / num_leaves) as u32;
        assign[leaf_base + leaf] = shard;
        population[shard as usize] += 1;
    }

    // Upper levels, bottom-up: majority vote of the down-neighbors,
    // which are already assigned because they live one level closer to
    // the leaves.
    for level in (0..leaf_level).rev() {
        let base = params.level_offset(level) as usize;
        let count = params.switches_at_level(level) as usize;
        for sw in base..base + count {
            let mut votes = vec![0usize; shards];
            for (_, peer) in net.switch(SwitchId(sw as u32)).peers() {
                if let DeviceRef::Switch(peer_id) = peer.device {
                    if params.switch_level_of(peer_id.0) == level + 1 {
                        let s = assign[peer_id.0 as usize];
                        debug_assert_ne!(s, UNASSIGNED, "down-neighbor assigned first");
                        votes[s as usize] += 1;
                    }
                }
            }
            let winner = (0..shards)
                .max_by(|&a, &b| {
                    votes[a]
                        .cmp(&votes[b])
                        // Prefer the *less* populated shard on a vote tie,
                        // then the smaller id: max_by keeps the later of
                        // equal elements, so order comparisons accordingly.
                        .then(population[b].cmp(&population[a]))
                        .then(b.cmp(&a))
                })
                .expect("at least one shard") as u32;
            assign[sw] = winner;
            population[winner as usize] += 1;
        }
    }

    debug_assert!(assign.iter().all(|&s| s != UNASSIGNED));
    assign
}

/// Number of switch-to-switch cables whose endpoints fall in different
/// shards under `assign` (indexed by switch id). The partition quality
/// metric: each cut cable can carry cross-shard traffic at runtime.
pub fn switch_edge_cut(net: &Network, assign: &[u32]) -> usize {
    net.links()
        .iter()
        .filter(|l| match (l.a.device, l.b.device) {
            (DeviceRef::Switch(a), DeviceRef::Switch(b)) => {
                assign[a.0 as usize] != assign[b.0 as usize]
            }
            _ => false,
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeParams;

    fn net(m: u32, n: u32) -> Network {
        Network::mport_ntree(TreeParams::new(m, n).expect("valid params"))
    }

    fn check_total(assign: &[u32], shards: usize) {
        assert!(assign.iter().all(|&s| (s as usize) < shards));
        for shard in 0..shards as u32 {
            assert!(
                assign.contains(&shard),
                "shard {shard} owns no switch in {assign:?}"
            );
        }
    }

    #[test]
    fn both_partitions_are_total_over_a_grid() {
        for (m, n) in [(4, 2), (4, 3), (8, 2), (8, 3)] {
            let net = net(m, n);
            // Callers clamp shard counts to the switch count; beyond it a
            // shard would necessarily be empty.
            for shards in 1..=net.num_switches().min(8) {
                let block = block_switch_partition(net.num_switches(), shards);
                check_total(&block, shards);
                let fat = fat_tree_switch_partition(&net, shards);
                check_total(&fat, shards);
            }
        }
    }

    #[test]
    fn fat_tree_keeps_each_leaf_subtree_in_one_shard_at_two_shards() {
        // FT(4,3): 16 leaves over 2 shards — every level-2 (leaf) and
        // level-1 switch of a half-tree shares the shard of its leaves.
        let net = net(4, 3);
        let assign = fat_tree_switch_partition(&net, 2);
        let params = net.params();
        let leaf_base = params.level_offset(params.n() - 1) as usize;
        for sw in 0..net.num_switches() {
            if sw >= leaf_base {
                continue;
            }
            // Every non-root upper switch agrees with all its
            // down-neighbors that vote unanimously.
            let level = params.switch_level_of(sw as u32);
            let mut down = Vec::new();
            for (_, peer) in net.switch(SwitchId(sw as u32)).peers() {
                if let DeviceRef::Switch(p) = peer.device {
                    if params.switch_level_of(p.0) == level + 1 {
                        down.push(assign[p.0 as usize]);
                    }
                }
            }
            if !down.is_empty() && down.iter().all(|&s| s == down[0]) {
                assert_eq!(
                    assign[sw], down[0],
                    "switch {sw} split from its unanimous subtree"
                );
            }
        }
    }

    #[test]
    fn fat_tree_cut_is_no_worse_than_block_on_paper_fabrics() {
        // The satellite acceptance check: FT(4,3) and FT(8,3) across the
        // thread counts the bench exercises.
        for (m, n) in [(4u32, 3u32), (8, 3)] {
            let net = net(m, n);
            for shards in [2usize, 4, 8] {
                let block = block_switch_partition(net.num_switches(), shards);
                let fat = fat_tree_switch_partition(&net, shards);
                let cut_block = switch_edge_cut(&net, &block);
                let cut_fat = switch_edge_cut(&net, &fat);
                assert!(
                    cut_fat <= cut_block,
                    "FT({m},{n})/{shards}: fat-tree cut {cut_fat} > block cut {cut_block}"
                );
            }
        }
    }

    #[test]
    fn falls_back_to_block_when_shards_exceed_leaves() {
        // FT(4,2) has 4 leaf switches; 6 shards cannot each own a leaf.
        let net = net(4, 2);
        let fat = fat_tree_switch_partition(&net, 6);
        let block = block_switch_partition(net.num_switches(), 6);
        assert_eq!(fat, block);
    }

    #[test]
    fn single_shard_is_trivial_and_cut_free() {
        let net = net(8, 2);
        let fat = fat_tree_switch_partition(&net, 1);
        assert!(fat.iter().all(|&s| s == 0));
        assert_eq!(switch_edge_cut(&net, &fat), 0);
    }
}
