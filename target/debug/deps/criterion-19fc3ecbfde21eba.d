/root/repo/target/debug/deps/criterion-19fc3ecbfde21eba.d: /root/stubdeps/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-19fc3ecbfde21eba.rmeta: /root/stubdeps/criterion/src/lib.rs

/root/stubdeps/criterion/src/lib.rs:
