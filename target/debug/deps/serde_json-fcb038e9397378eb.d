/root/repo/target/debug/deps/serde_json-fcb038e9397378eb.d: /root/stubdeps/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-fcb038e9397378eb.rmeta: /root/stubdeps/serde_json/src/lib.rs

/root/stubdeps/serde_json/src/lib.rs:
