//! Fault-tolerant forwarding tables for degraded fat trees.
//!
//! The paper's schemes assume the full `IBFT(m, n)` wiring. Real fabrics
//! lose links; the subnet manager then has to reprogram the tables. This
//! module rebuilds MLID/SLID-style tables on a *degraded* network (some
//! cables removed) such that:
//!
//! * on an intact network the tables are **bit-identical** to the base
//!   scheme's (repair is conservative);
//! * every node that is still physically reachable stays reachable from
//!   everywhere, over an up\*-then-down\* path (so the routing remains
//!   deadlock-free);
//! * the multipath spreading of the base scheme is preserved wherever the
//!   designated port survives, and degrades gracefully (deterministic
//!   remap onto the surviving candidates) where it does not.
//!
//! The algorithm is two label-driven sweeps:
//!
//! 1. **Down-reachability** (leaves → roots): `reach_down[s]` = the set of
//!    nodes reachable from switch `s` using only live downward links.
//!    In a fat tree the child that can reach node `p` from level `l` is
//!    uniquely determined by digit `p_l`, so membership is exact.
//! 2. **Feasibility** (roots → leaves): `feasible[s]` = nodes deliverable
//!    from `s` by climbing zero or more live up-links and then descending:
//!    `feasible[s] = reach_down[s] ∪ ⋃ feasible[parent]`.
//!
//! An LFT entry then descends when the owner is in `reach_down`
//! (Equation 1, guarded by liveness) and otherwise climbs through the
//! scheme's designated up-port if that parent is feasible, falling back to
//! the designated-index rotation over the surviving feasible up-ports.
//!
//! ## Incremental repair
//!
//! A switch's programmed row is a pure function of its own live port set,
//! `reach_down[self]`, the `reach_down` of its down-peers, and the
//! `feasible` of its up-peers. [`RepairState`] caches the sweep vectors of
//! the previously routed network, so [`repair_fault_tolerant`] can re-run
//! the (cheap) sweeps on the further-degraded network, reprogram **only**
//! the switches whose inputs changed, and emit the exact `(switch, LID)`
//! entry deltas as [`LftPatch`]es — the incremental reprogramming an SM
//! performs after a mid-run failure. The result is bit-identical to a
//! from-scratch [`build_fault_tolerant`] on the same degraded network.

use crate::{Lft, Lid, MlidScheme, Routing, RoutingKind, RoutingScheme, SlidScheme};
use ibfat_topology::{
    DeviceRef, Level, Network, NodeLabel, PortNum, SwitchId, SwitchLabel, TreeParams,
};

/// A dense bitset over node ids.
#[derive(Clone, PartialEq, Eq)]
struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    fn new(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    #[inline]
    fn insert(&mut self, i: u32) {
        self.words[(i / 64) as usize] |= 1 << (i % 64);
    }

    #[inline]
    fn contains(&self, i: u32) -> bool {
        self.words[(i / 64) as usize] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &NodeSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Switch ids grouped by tree level (index = level).
fn switches_by_level(params: TreeParams) -> Vec<Vec<SwitchId>> {
    let mut by_level: Vec<Vec<SwitchId>> = vec![Vec::new(); params.n() as usize];
    for label in SwitchLabel::all(params) {
        by_level[label.level().index()].push(label.id(params));
    }
    by_level
}

/// Pass 1: down-reachability, computed leaves -> roots (descending level).
fn sweep_reach_down(net: &Network, by_level: &[Vec<SwitchId>]) -> Vec<NodeSet> {
    let params = net.params();
    let half = params.half();
    let num_nodes = net.num_nodes();
    let mut reach_down: Vec<NodeSet> = vec![NodeSet::new(num_nodes); net.num_switches()];
    for level in (0..params.n()).rev() {
        for &sw in &by_level[level as usize] {
            let down_ports = if level == 0 { params.m() } else { half };
            let mut set = NodeSet::new(num_nodes);
            for k in 0..down_ports {
                let port = PortNum(k as u8 + 1);
                // Uncabled ports are simply skipped (failed links).
                if let Some(peer) = net.peer_of(DeviceRef::Switch(sw), port) {
                    match peer.device {
                        DeviceRef::Node(n) => set.insert(n.0),
                        DeviceRef::Switch(child) => {
                            set.union_with(&reach_down[child.index()]);
                        }
                    }
                }
            }
            reach_down[sw.index()] = set;
        }
    }
    reach_down
}

/// Pass 2: feasibility, roots -> leaves (ascending level).
fn sweep_feasible(
    net: &Network,
    by_level: &[Vec<SwitchId>],
    reach_down: &[NodeSet],
) -> Vec<NodeSet> {
    let params = net.params();
    let half = params.half();
    let mut feasible = reach_down.to_vec();
    for level in 1..params.n() {
        for &sw in &by_level[level as usize] {
            let mut set = feasible[sw.index()].clone();
            for k in half..params.m() {
                let port = PortNum(k as u8 + 1);
                if let Some(peer) = net.peer_of(DeviceRef::Switch(sw), port) {
                    if let DeviceRef::Switch(parent) = peer.device {
                        set.union_with(&feasible[parent.index()]);
                    }
                }
            }
            feasible[sw.index()] = set;
        }
    }
    feasible
}

/// Bitmask of cabled ports per switch (bit `k` = port `k+1` has a peer).
fn live_port_masks(net: &Network) -> Vec<u64> {
    let params = net.params();
    (0..net.num_switches())
        .map(|sw| {
            let mut mask = 0u64;
            for k in 0..params.m() {
                if net
                    .peer_of(DeviceRef::Switch(SwitchId(sw as u32)), PortNum(k as u8 + 1))
                    .is_some()
                {
                    mask |= 1 << k;
                }
            }
            mask
        })
        .collect()
}

/// Pass 3 for one switch: program its forwarding row from the sweeps.
fn program_switch(
    net: &Network,
    space: &crate::LidSpace,
    label: &SwitchLabel,
    reach_down: &[NodeSet],
    feasible: &[NodeSet],
) -> Lft {
    let params = net.params();
    let half = params.half();
    let sw = label.id(params);
    let level = label.level();
    let mut lft = Lft::new(space.max_lid());

    // Live, feasible up-port candidates are shared by every LID at
    // this switch, except for the per-destination feasibility check.
    let live_up: Vec<(u32, SwitchId)> = (half..params.m())
        .filter_map(|k| {
            net.peer_of(DeviceRef::Switch(sw), PortNum(k as u8 + 1))
                .and_then(|peer| match peer.device {
                    DeviceRef::Switch(parent) => Some((k, parent)),
                    DeviceRef::Node(_) => None,
                })
        })
        .collect();

    for node in NodeLabel::all(params) {
        let nid = node.id(params);
        for lid in space.lids(nid) {
            if reach_down[sw.index()].contains(nid.0) {
                let port = down_port_live(net, params, sw, level, &node, reach_down);
                if let Some(port) = port {
                    lft.set(lid, port);
                }
                continue;
            }
            // Climb: designated digit per the base scheme's Equation 2.
            let designated = eq2_digit(params, lid, u32::from(level.0));
            let candidates: Vec<u32> = live_up
                .iter()
                .filter(|(_, parent)| feasible[parent.index()].contains(nid.0))
                .map(|&(k, _)| k)
                .collect();
            if candidates.is_empty() {
                continue; // physically unreachable from here
            }
            let port = if candidates.contains(&(designated + half)) {
                designated + half
            } else {
                candidates[designated as usize % candidates.len()]
            };
            lft.set(lid, PortNum(port as u8 + 1));
        }
    }
    lft
}

fn lid_space_for(net: &Network, kind: RoutingKind) -> crate::LidSpace {
    match kind {
        RoutingKind::Mlid => MlidScheme.lid_space(net),
        RoutingKind::Slid => SlidScheme.lid_space(net),
        RoutingKind::UpDown => panic!("up*/down* handles degraded graphs natively"),
    }
}

/// Build fault-tolerant forwarding tables for a (possibly degraded)
/// `IBFT(m, n)` network, mirroring the base scheme `kind`
/// ([`RoutingKind::Mlid`] or [`RoutingKind::Slid`]).
///
/// Entries for nodes that are physically unreachable from a switch are
/// left unprogrammed; tracing such a pair reports
/// [`crate::RoutingError::NoLftEntry`].
///
/// # Panics
/// Panics if `kind` is [`RoutingKind::UpDown`] (it is already
/// graph-generic — build it directly on the degraded network).
pub fn build_fault_tolerant(net: &Network, kind: RoutingKind) -> Routing {
    let params = net.params();
    let space = lid_space_for(net, kind);
    let by_level = switches_by_level(params);
    let reach_down = sweep_reach_down(net, &by_level);
    let feasible = sweep_feasible(net, &by_level, &reach_down);

    let mut lfts = Vec::with_capacity(net.num_switches());
    for label in SwitchLabel::all(params) {
        lfts.push(program_switch(net, &space, &label, &reach_down, &feasible));
    }
    Routing::assemble(kind, params, space, lfts)
}

/// One forwarding-table entry delta: set `(sw, lid)` to `port`
/// (`None` = clear the entry; the destination became unreachable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LftPatch {
    pub sw: SwitchId,
    pub lid: Lid,
    pub port: Option<PortNum>,
}

/// What an incremental repair touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairStats {
    /// Switches whose row needed at least one entry change.
    pub switches_reprogrammed: usize,
    /// Individual `(switch, LID)` entries patched.
    pub entries_patched: usize,
    /// Total entry slots in the full table set (`switches × LIDs`) —
    /// the reprogramming cost a from-scratch rebuild would pay.
    pub table_entries: usize,
}

/// Cached sweep vectors of the last-routed network, enabling
/// [`repair_fault_tolerant`] to reprogram only switches whose pass-3
/// inputs changed.
pub struct RepairState {
    reach_down: Vec<NodeSet>,
    feasible: Vec<NodeSet>,
    live_mask: Vec<u64>,
}

impl RepairState {
    /// Capture the sweep state of `net` (the network the current tables
    /// were built for — intact or already degraded).
    pub fn new(net: &Network) -> RepairState {
        let by_level = switches_by_level(net.params());
        let reach_down = sweep_reach_down(net, &by_level);
        let feasible = sweep_feasible(net, &by_level, &reach_down);
        RepairState {
            reach_down,
            feasible,
            live_mask: live_port_masks(net),
        }
    }
}

/// Incrementally repair `prev` (tables valid for the network `state` was
/// captured on) for the further-degraded (or partially revived) network
/// `net`: re-run the reachability sweeps, reprogram only the switches
/// whose pass-3 inputs changed, and return the repaired routing plus the
/// exact entry-level deltas.
///
/// The returned tables are bit-identical to
/// `build_fault_tolerant(net, kind)`; `state` is advanced to `net` so
/// repairs chain across successive failures.
///
/// # Panics
/// Panics if `kind` is [`RoutingKind::UpDown`], if `prev` has no
/// materialized full tables, or if `prev` was built for a different
/// scheme.
pub fn repair_fault_tolerant(
    net: &Network,
    kind: RoutingKind,
    prev: &Routing,
    state: &mut RepairState,
) -> (Routing, Vec<LftPatch>, RepairStats) {
    let params = net.params();
    assert_eq!(prev.kind(), kind, "repair must continue the same scheme");
    assert!(
        prev.has_tables() && !prev.is_view(),
        "incremental repair needs the full previous tables"
    );
    let space = lid_space_for(net, kind);
    let by_level = switches_by_level(params);
    let reach_down = sweep_reach_down(net, &by_level);
    let feasible = sweep_feasible(net, &by_level, &reach_down);
    let live_mask = live_port_masks(net);

    let num_switches = net.num_switches();
    let half = params.half();
    let reach_changed: Vec<bool> = (0..num_switches)
        .map(|s| reach_down[s] != state.reach_down[s])
        .collect();
    let feas_changed: Vec<bool> = (0..num_switches)
        .map(|s| feasible[s] != state.feasible[s])
        .collect();

    // A switch needs reprogramming iff a pass-3 input changed: its own
    // cabled-port set or reach set, a descent-peer's reach set, or a
    // climb-candidate's feasible set. Descent consults ports `1..=m` on a
    // root and `1..=half` elsewhere (the designated digit's range); the
    // climb candidates are always ports `half..m` — on a root those are
    // down-links, but `program_switch` still consults their `feasible`
    // sets there. (Neighbor enumeration over the *new* net is sufficient:
    // a vanished neighbor flips the port mask.)
    let needs_rebuild = |label: &SwitchLabel| -> bool {
        let sw = label.id(params);
        let s = sw.index();
        if live_mask[s] != state.live_mask[s] || reach_changed[s] {
            return true;
        }
        let level = label.level();
        let down_ports = if level.0 == 0 { params.m() } else { half };
        for k in 0..params.m() {
            let port = PortNum(k as u8 + 1);
            let Some(peer) = net.peer_of(DeviceRef::Switch(sw), port) else {
                continue;
            };
            if let DeviceRef::Switch(other) = peer.device {
                let o = other.index();
                if (k < down_ports && reach_changed[o]) || (k >= half && feas_changed[o]) {
                    return true;
                }
            }
        }
        false
    };

    let max_lid = space.max_lid();
    let mut lfts = Vec::with_capacity(num_switches);
    let mut patches = Vec::new();
    let mut switches_reprogrammed = 0;
    for label in SwitchLabel::all(params) {
        let sw = label.id(params);
        let old = prev.lft(sw);
        if !needs_rebuild(&label) {
            lfts.push(old.clone());
            continue;
        }
        let fresh = program_switch(net, &space, &label, &reach_down, &feasible);
        let mut touched = false;
        for raw in 1..=max_lid.0 {
            let lid = Lid(raw);
            let (was, now) = (old.get(lid), fresh.get(lid));
            if was != now {
                touched = true;
                patches.push(LftPatch { sw, lid, port: now });
            }
        }
        if touched {
            switches_reprogrammed += 1;
        }
        lfts.push(fresh);
    }

    let stats = RepairStats {
        switches_reprogrammed,
        entries_patched: patches.len(),
        table_entries: num_switches * (max_lid.index() + 1),
    };
    state.reach_down = reach_down;
    state.feasible = feasible;
    state.live_mask = live_mask;
    (Routing::assemble(kind, params, space, lfts), patches, stats)
}

/// The unique live down-port toward `node`, if its subtree link survives
/// and the subtree can still reach the node.
fn down_port_live(
    net: &Network,
    params: TreeParams,
    sw: SwitchId,
    level: Level,
    node: &NodeLabel,
    reach_down: &[NodeSet],
) -> Option<PortNum> {
    let port = PortNum(node.digit(level.index()) + 1);
    let peer = net.peer_of(DeviceRef::Switch(sw), port)?;
    match peer.device {
        DeviceRef::Node(n) => (n == node.id(params)).then_some(port),
        DeviceRef::Switch(child) => reach_down[child.index()]
            .contains(node.id(params).0)
            .then_some(port),
    }
}

/// Digit `n-1-l` of `lid - 1` in base `m/2` — the up-port index the base
/// schemes designate (Equation 2 without the port offset).
fn eq2_digit(params: TreeParams, lid: Lid, level: u32) -> u32 {
    let half = params.half();
    ((lid.0 - 1) / half.pow(params.n() - 1 - level)) % half
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify_all_lids_deliver, verify_deadlock_free};
    use ibfat_topology::TreeParams;

    fn build(m: u32, n: u32) -> Network {
        Network::mport_ntree(TreeParams::new(m, n).unwrap())
    }

    #[test]
    fn intact_network_repair_is_identity() {
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            for (m, n) in [(4, 2), (4, 3), (8, 2)] {
                let net = build(m, n);
                let base = Routing::build(&net, kind);
                let ft = build_fault_tolerant(&net, kind);
                assert_eq!(
                    base.lfts(),
                    ft.lfts(),
                    "{kind} IBFT({m},{n}): repair changed intact tables"
                );
            }
        }
    }

    #[test]
    fn single_failure_keeps_full_delivery() {
        let net = build(4, 2);
        for idx in net.inter_switch_link_indices() {
            let mut degraded = net.clone();
            degraded.remove_link(idx);
            assert!(degraded.is_connected());
            for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
                let routing = build_fault_tolerant(&degraded, kind);
                verify_all_lids_deliver(&degraded, &routing)
                    .unwrap_or_else(|e| panic!("{kind} after failing link {idx}: {e}"));
                verify_deadlock_free(&degraded, &routing)
                    .unwrap_or_else(|e| panic!("{kind} after failing link {idx}: {e}"));
            }
        }
    }

    #[test]
    fn incremental_repair_matches_full_rebuild() {
        // Kill two inter-switch links one at a time; after each kill the
        // patch-level repair must land on tables bit-identical to a
        // from-scratch build, while touching far fewer entries.
        let net = build(4, 3);
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let mut routing = build_fault_tolerant(&net, kind);
            let mut state = RepairState::new(&net);
            let mut degraded = net.clone();
            for (step, pick) in [3usize, 10].into_iter().enumerate() {
                // Indices shift after a removal; recompute from the live set.
                let live = degraded.inter_switch_link_indices();
                degraded.remove_link(live[pick % live.len()]);
                let (repaired, patches, stats) =
                    repair_fault_tolerant(&degraded, kind, &routing, &mut state);
                let full = build_fault_tolerant(&degraded, kind);
                assert_eq!(
                    repaired.lfts(),
                    full.lfts(),
                    "{kind} step {step}: incremental != full"
                );
                assert_eq!(stats.entries_patched, patches.len());
                assert!(
                    stats.entries_patched < stats.table_entries,
                    "{kind} step {step}: repair touched the whole table"
                );
                assert!(!patches.is_empty(), "{kind} step {step}: a kill must patch");
                routing = repaired;
            }
        }
    }

    #[test]
    fn incremental_repair_on_unchanged_network_is_empty() {
        let net = build(4, 2);
        let routing = build_fault_tolerant(&net, RoutingKind::Mlid);
        let mut state = RepairState::new(&net);
        let (repaired, patches, stats) =
            repair_fault_tolerant(&net, RoutingKind::Mlid, &routing, &mut state);
        assert_eq!(repaired.lfts(), routing.lfts());
        assert!(patches.is_empty());
        assert_eq!(stats.switches_reprogrammed, 0);
    }

    #[test]
    fn double_failures_on_ft43_degrade_gracefully() {
        // Sampled pairs of inter-switch failures on the 4-port 3-tree.
        // Two failures can make pairs unreachable under up*-then-down*
        // semantics even when the graph stays connected (the only
        // surviving walk turns down-then-up); such pairs must fail
        // cleanly with a missing LFT entry — never loop or misdeliver —
        // and every other pair must still deliver on a legal path.
        let net = build(4, 3);
        let inter = net.inter_switch_link_indices();
        let mut total_pairs = 0u32;
        let mut unreachable = 0u32;
        for (a_i, &a) in inter.iter().enumerate().step_by(7) {
            for &b in inter.iter().skip(a_i + 1).step_by(11) {
                let mut degraded = net.clone();
                // Remove the higher index first so the lower stays valid.
                degraded.remove_link(b.max(a));
                degraded.remove_link(b.min(a));
                if !degraded.is_connected() {
                    continue;
                }
                let routing = build_fault_tolerant(&degraded, RoutingKind::Mlid);
                let space = routing.lid_space();
                for src in 0..degraded.num_nodes() as u32 {
                    for lid in 1..=space.max_lid().0 {
                        total_pairs += 1;
                        match routing.trace(&degraded, ibfat_topology::NodeId(src), Lid(lid)) {
                            Ok(_) => {}
                            Err(crate::RoutingError::NoLftEntry { .. }) => unreachable += 1,
                            Err(e) => panic!("links {a},{b}, src {src}, lid {lid}: {e}"),
                        }
                    }
                }
                verify_deadlock_free(&degraded, &routing)
                    .unwrap_or_else(|e| panic!("failing links {a},{b}: {e}"));
            }
        }
        assert!(total_pairs > 0);
        // The overwhelming majority of pairs must survive two failures.
        assert!(
            f64::from(unreachable) < 0.05 * f64::from(total_pairs),
            "{unreachable}/{total_pairs} pairs unreachable"
        );
    }

    #[test]
    fn unreachable_entries_stay_unprogrammed() {
        // Cut a node's only cable: every switch loses its entries for that
        // node's LIDs, everything else still delivers.
        let mut net = build(4, 2);
        let victim_link = net
            .links()
            .iter()
            .position(|l| {
                l.a.device == DeviceRef::Node(ibfat_topology::NodeId(0))
                    || l.b.device == DeviceRef::Node(ibfat_topology::NodeId(0))
            })
            .unwrap();
        net.remove_link(victim_link);
        let routing = build_fault_tolerant(&net, RoutingKind::Mlid);
        let space = routing.lid_space();
        let victim_lid = space.base_lid(ibfat_topology::NodeId(0));
        for sw in 0..net.num_switches() {
            assert_eq!(
                routing.lft(SwitchId(sw as u32)).get(victim_lid),
                None,
                "S{sw} still routes to the isolated node"
            );
        }
        // Every other pair still delivers.
        for src in 1..net.num_nodes() as u32 {
            for dst in 1..net.num_nodes() as u32 {
                let dlid =
                    routing.select_dlid(ibfat_topology::NodeId(src), ibfat_topology::NodeId(dst));
                routing
                    .trace(&net, ibfat_topology::NodeId(src), dlid)
                    .unwrap();
            }
        }
    }

    #[test]
    #[should_panic(expected = "natively")]
    fn updown_is_rejected() {
        let net = build(4, 2);
        build_fault_tolerant(&net, RoutingKind::UpDown);
    }
}
