//! Shared hand-rolled JSON machinery (`std`-only).
//!
//! The workspace builds offline against a stub `serde_json`, so every
//! machine-readable export — fabric counters, channel loads, workload
//! reports, flight-recorder JSONL, engine telemetry, the bench
//! trajectory — is written by hand. This module is the single home for
//! that machinery: a compact [`JsonBuf`] writer with automatic comma
//! management, the string [`escape`] routine, and the minimal subset
//! [`parse`]r the bench comparator (and the tests validating the other
//! exports) read documents back with.
//!
//! It lives in `ibfat-sim` because the dependency arrows point this way
//! (`ib-fabric` → `ibfat-sim` → …); `ib-fabric` re-exports it as
//! `ib_fabric::json` for the CLI.

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A compact JSON writer: no whitespace, automatic comma placement.
///
/// Structural calls ([`begin_obj`](JsonBuf::begin_obj) /
/// [`begin_arr`](JsonBuf::begin_arr) and their `end_*` twins) nest
/// freely; [`key`](JsonBuf::key) names the next value inside an object;
/// the `field_*` helpers fuse both. The writer inserts `,` between
/// siblings so call sites never track "first element" state.
///
/// ```
/// use ibfat_sim::json::JsonBuf;
/// let mut j = JsonBuf::new();
/// j.begin_obj();
/// j.field_u64("schema", 1);
/// j.key("rows");
/// j.begin_arr();
/// j.str_value("a\"b");
/// j.u64_value(7);
/// j.end_arr();
/// j.end_obj();
/// assert_eq!(j.into_string(), r#"{"schema":1,"rows":["a\"b",7]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Per-nesting-level "next sibling needs a comma" flags.
    comma: Vec<bool>,
    /// A `key` was just written; the next value must not be preceded by
    /// a comma.
    pending_value: bool,
}

impl JsonBuf {
    pub fn new() -> JsonBuf {
        JsonBuf::with_capacity(256)
    }

    pub fn with_capacity(cap: usize) -> JsonBuf {
        JsonBuf {
            out: String::with_capacity(cap),
            comma: Vec::new(),
            pending_value: false,
        }
    }

    /// Finish and take the document.
    pub fn into_string(self) -> String {
        debug_assert!(self.comma.is_empty(), "unbalanced begin/end");
        self.out
    }

    fn sep(&mut self) {
        if self.pending_value {
            self.pending_value = false;
            return;
        }
        if let Some(need) = self.comma.last_mut() {
            if *need {
                self.out.push(',');
            } else {
                *need = true;
            }
        }
    }

    pub fn begin_obj(&mut self) {
        self.sep();
        self.out.push('{');
        self.comma.push(false);
    }

    pub fn end_obj(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    pub fn begin_arr(&mut self) {
        self.sep();
        self.out.push('[');
        self.comma.push(false);
    }

    pub fn end_arr(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    /// Write `"k":`; the next value call provides the value.
    pub fn key(&mut self, k: &str) {
        self.sep();
        self.out.push('"');
        self.out.push_str(&escape(k));
        self.out.push_str("\":");
        self.pending_value = true;
    }

    pub fn str_value(&mut self, v: &str) {
        self.sep();
        self.out.push('"');
        self.out.push_str(&escape(v));
        self.out.push('"');
    }

    pub fn u64_value(&mut self, v: u64) {
        self.sep();
        let _ = std::fmt::Write::write_fmt(&mut self.out, format_args!("{v}"));
    }

    pub fn i64_value(&mut self, v: i64) {
        self.sep();
        let _ = std::fmt::Write::write_fmt(&mut self.out, format_args!("{v}"));
    }

    pub fn bool_value(&mut self, v: bool) {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Write a float with fixed `decimals` (JSON has no NaN/Inf; both
    /// are written as `0`).
    pub fn f64_value(&mut self, v: f64, decimals: usize) {
        self.sep();
        if v.is_finite() {
            let _ = std::fmt::Write::write_fmt(&mut self.out, format_args!("{v:.decimals$}"));
        } else {
            self.out.push('0');
        }
    }

    /// Escape hatch: splice pre-rendered JSON as one value.
    pub fn raw_value(&mut self, v: &str) {
        self.sep();
        self.out.push_str(v);
    }

    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.str_value(v);
    }

    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64_value(v);
    }

    pub fn field_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        self.i64_value(v);
    }

    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool_value(v);
    }

    pub fn field_f64(&mut self, k: &str, v: f64, decimals: usize) {
        self.key(k);
        self.f64_value(v, decimals);
    }
}

// ----- a minimal JSON subset parser ------------------------------------

/// A parsed JSON value (the subset the workspace's writers emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Field access over a parsed object.
pub struct Obj<'a>(pub &'a [(String, Json)]);

impl Obj<'_> {
    /// The value of field `key`, or an error naming the missing field.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field \"{key}\""))
    }
}

impl Json {
    pub fn as_object(&self, what: &str) -> Result<Obj<'_>, String> {
        match self {
            Json::Object(fields) => Ok(Obj(fields)),
            _ => Err(format!("{what}: expected an object")),
        }
    }
    pub fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(format!("{what}: expected an array")),
        }
    }
    pub fn as_string(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::String(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }
    pub fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Number(x) => Ok(*x),
            _ => Err(format!("{what}: expected a number")),
        }
    }
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        let x = self.as_f64(what)?;
        if x < 0.0 || x.fract() != 0.0 {
            return Err(format!("{what}: expected a non-negative integer, got {x}"));
        }
        Ok(x as u64)
    }
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("{what}: expected a boolean")),
        }
    }
}

/// Parse one complete JSON document (tolerant of whitespace and key
/// order; not a general-purpose JSON parser — exactly the subset the
/// workspace writers emit, plus literals).
pub fn parse(text: &str) -> Result<Json, String> {
    Parser::new(text).parse_document()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(&mut self) -> Result<Json, String> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing content at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::String(self.parse_string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape: {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 passes through byte by byte; the
                    // input is a &str, so the result stays valid.
                    let start = self.pos;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >= 0xF0 => 4,
                        _ if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("invalid number \"{text}\" at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_round_trips_through_the_parser() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_u64("n", 42);
        j.field_str("s", "quote\" slash\\ tab\t");
        j.field_f64("f", 2.5, 3);
        j.field_bool("b", true);
        j.key("arr");
        j.begin_arr();
        j.begin_obj();
        j.field_i64("neg", -7);
        j.end_obj();
        j.u64_value(1);
        j.u64_value(2);
        j.end_arr();
        j.key("empty");
        j.begin_arr();
        j.end_arr();
        j.end_obj();
        let text = j.into_string();
        assert_eq!(
            text,
            "{\"n\":42,\"s\":\"quote\\\" slash\\\\ tab\\u0009\",\"f\":2.500,\
             \"b\":true,\"arr\":[{\"neg\":-7},1,2],\"empty\":[]}"
        );
        let doc = parse(&text).unwrap();
        let obj = doc.as_object("top").unwrap();
        assert_eq!(obj.field("n").unwrap().as_u64("n").unwrap(), 42);
        assert_eq!(
            obj.field("s").unwrap().as_string("s").unwrap(),
            "quote\" slash\\ tab\t"
        );
        assert!((obj.field("f").unwrap().as_f64("f").unwrap() - 2.5).abs() < 1e-12);
        assert!(obj.field("b").unwrap().as_bool("b").unwrap());
        assert_eq!(obj.field("arr").unwrap().as_array("arr").unwrap().len(), 3);
    }

    #[test]
    fn non_finite_floats_degrade_to_zero() {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_f64("nan", f64::NAN, 1);
        j.field_f64("inf", f64::INFINITY, 1);
        j.end_obj();
        assert_eq!(j.into_string(), "{\"nan\":0,\"inf\":0}");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parser_accepts_literals_and_whitespace() {
        let doc = parse(" { \"a\" : [ true , false , null ] } ").unwrap();
        let arr = doc
            .as_object("top")
            .unwrap()
            .field("a")
            .unwrap()
            .as_array("a")
            .unwrap()
            .to_vec();
        assert_eq!(arr, vec![Json::Bool(true), Json::Bool(false), Json::Null]);
    }
}
