use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Maximum number of digits a label can have. `FT(m, n)` labels have at most
/// `n` digits and the LID-space bound in [`crate::TreeParams`] keeps `n`
/// well below this.
pub const MAX_DIGITS: usize = 16;

/// A fixed-capacity digit string used for node and switch labels.
///
/// Labels in the m-port n-tree are short (at most `n <= 16` digits), so this
/// avoids heap allocation entirely — labels are created in hot loops when
/// building forwarding tables for every (switch, LID) pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Digits {
    buf: [u8; MAX_DIGITS],
    len: u8,
}

impl Digits {
    /// An empty digit string.
    #[inline]
    pub const fn new() -> Self {
        Digits {
            buf: [0; MAX_DIGITS],
            len: 0,
        }
    }

    /// A digit string of `len` zeros.
    ///
    /// # Panics
    /// Panics if `len > MAX_DIGITS`.
    #[inline]
    pub fn zeros(len: usize) -> Self {
        assert!(len <= MAX_DIGITS, "label too long: {len} digits");
        Digits {
            buf: [0; MAX_DIGITS],
            len: len as u8,
        }
    }

    /// Build from a slice of digits.
    ///
    /// # Panics
    /// Panics if `slice.len() > MAX_DIGITS`.
    #[inline]
    pub fn from_slice(slice: &[u8]) -> Self {
        assert!(slice.len() <= MAX_DIGITS, "label too long");
        let mut d = Digits::zeros(slice.len());
        d.buf[..slice.len()].copy_from_slice(slice);
        d
    }

    /// Number of digits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if there are no digits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The digits as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Append a digit.
    ///
    /// # Panics
    /// Panics if the string is already at capacity.
    #[inline]
    pub fn push(&mut self, digit: u8) {
        assert!((self.len as usize) < MAX_DIGITS, "label overflow");
        self.buf[self.len as usize] = digit;
        self.len += 1;
    }

    /// Iterate over the digits by value.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.as_slice().iter().copied()
    }

    /// Length of the greatest common prefix with `other`.
    #[inline]
    pub fn common_prefix_len(&self, other: &Digits) -> usize {
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .take_while(|(a, b)| a == b)
            .count()
    }
}

impl Default for Digits {
    fn default() -> Self {
        Digits::new()
    }
}

impl Index<usize> for Digits {
    type Output = u8;
    #[inline]
    fn index(&self, i: usize) -> &u8 {
        &self.as_slice()[i]
    }
}

impl IndexMut<usize> for Digits {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.buf[..self.len as usize][i]
    }
}

fn fmt_digits(d: &Digits, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for digit in d.iter() {
        if digit < 10 {
            write!(f, "{digit}")?;
        } else {
            // Radices above 10 (m >= 32 trees) print digits in bracketed
            // decimal so labels stay unambiguous.
            write!(f, "[{digit}]")?;
        }
    }
    Ok(())
}

impl fmt::Debug for Digits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_digits(self, f)
    }
}

impl fmt::Display for Digits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_digits(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index() {
        let mut d = Digits::new();
        d.push(1);
        d.push(0);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], 1);
        assert_eq!(d[2], 3);
        assert_eq!(d.as_slice(), &[1, 0, 3]);
    }

    #[test]
    fn common_prefix() {
        let a = Digits::from_slice(&[1, 0, 0]);
        let b = Digits::from_slice(&[1, 1, 1]);
        let c = Digits::from_slice(&[1, 0, 1]);
        assert_eq!(a.common_prefix_len(&b), 1);
        assert_eq!(a.common_prefix_len(&c), 2);
        assert_eq!(a.common_prefix_len(&a), 3);
        assert_eq!(Digits::new().common_prefix_len(&a), 0);
    }

    #[test]
    fn display_small_and_large_digits() {
        let d = Digits::from_slice(&[1, 0, 2]);
        assert_eq!(d.to_string(), "102");
        let d = Digits::from_slice(&[15, 3]);
        assert_eq!(d.to_string(), "[15]3");
    }

    #[test]
    #[should_panic(expected = "label overflow")]
    fn overflow_panics() {
        let mut d = Digits::zeros(MAX_DIGITS);
        d.push(0);
    }
}
