/root/repo/target/debug/deps/ibfat-1118c69ae4ae6d34.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libibfat-1118c69ae4ae6d34.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
