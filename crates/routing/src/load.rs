//! Static channel-load analysis.
//!
//! For a deterministic routing, the load of a directed link under a given
//! traffic matrix is the number of (source, destination) flows routed
//! across it — a simulator-free predictor of contention. A scheme's
//! worst-case link load under all-to-all traffic bounds its saturation
//! throughput from above: a link crossed by `L` of the `N-1` flows each
//! node sends can deliver at most `1/L`th of a link per flow.

use crate::{Routing, RoutingError};
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum, SwitchLabel};
use std::collections::HashMap;

/// Load statistics over the directed links of a subnet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLoads {
    /// Flows crossing each directed link, keyed by the transmitting
    /// `(device, port)`.
    pub per_link: HashMap<(DeviceRef, PortNum), u32>,
    /// Maximum over the *upward* inter-switch links.
    pub max_up: u32,
    /// Maximum over the *downward* inter-switch links.
    pub max_down: u32,
    /// Total links carrying at least one flow.
    pub used_links: usize,
}

impl ChannelLoads {
    /// The highest load over every link (including edge links).
    pub fn max(&self) -> u32 {
        self.per_link.values().copied().max().unwrap_or(0)
    }

    /// Flows crossing the directed link transmitted by `(device, port)`;
    /// 0 for unused (or nonexistent) links.
    pub fn load_of(&self, device: DeviceRef, port: PortNum) -> u32 {
        self.per_link.get(&(device, port)).copied().unwrap_or(0)
    }

    /// The `k` most loaded directed links, heaviest first. Ties break
    /// deterministically: switches before nodes, then by id, then port —
    /// so equal analyses print identically across runs.
    pub fn hottest(&self, k: usize) -> Vec<(DeviceRef, PortNum, u32)> {
        fn rank(d: DeviceRef) -> (u8, u32) {
            match d {
                DeviceRef::Switch(s) => (0, s.0),
                DeviceRef::Node(n) => (1, n.0),
            }
        }
        let mut all: Vec<_> = self
            .per_link
            .iter()
            .map(|(&(device, port), &load)| (device, port, load))
            .collect();
        all.sort_by_key(|&(device, port, load)| (std::cmp::Reverse(load), rank(device), port.0));
        all.truncate(k);
        all
    }
}

/// Compute channel loads for the all-to-all traffic matrix under the
/// routing's own path selection (every ordered pair sends one flow).
pub fn all_to_all_loads(net: &Network, routing: &Routing) -> Result<ChannelLoads, RoutingError> {
    let mut matrix = Vec::new();
    for src in 0..net.num_nodes() as u32 {
        for dst in 0..net.num_nodes() as u32 {
            if src != dst {
                matrix.push((NodeId(src), NodeId(dst)));
            }
        }
    }
    loads_for_matrix(net, routing, &matrix)
}

/// Compute channel loads for an explicit flow matrix.
pub fn loads_for_matrix(
    net: &Network,
    routing: &Routing,
    flows: &[(NodeId, NodeId)],
) -> Result<ChannelLoads, RoutingError> {
    let params = net.params();
    let mut per_link: HashMap<(DeviceRef, PortNum), u32> = HashMap::new();
    for &(src, dst) in flows {
        let dlid = routing.select_dlid(src, dst);
        let route = routing.trace(net, src, dlid)?;
        for (device, port) in route.directed_links() {
            *per_link.entry((device, port)).or_insert(0) += 1;
        }
    }
    let mut max_up = 0;
    let mut max_down = 0;
    for (&(device, port), &load) in &per_link {
        if let DeviceRef::Switch(sw) = device {
            let label = SwitchLabel::from_id(params, sw);
            let is_up = label.level().0 > 0 && u32::from(port.0) > params.half();
            if is_up {
                max_up = max_up.max(load);
            } else {
                max_down = max_down.max(load);
            }
        }
    }
    Ok(ChannelLoads {
        used_links: per_link.len(),
        per_link,
        max_up,
        max_down,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingKind;
    use ibfat_topology::TreeParams;

    fn loads(m: u32, n: u32, kind: RoutingKind) -> ChannelLoads {
        let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
        let routing = Routing::build(&net, kind);
        all_to_all_loads(&net, &routing).unwrap()
    }

    #[test]
    fn all_to_all_upward_load_is_balanced_for_both_schemes() {
        // Under the *uniform* all-to-all matrix both schemes balance the
        // upward links perfectly (MLID partitions them by source, SLID by
        // destination digit): every leaf up-link of FT(4,3) carries
        // exactly N-2 flows (one source's 15 flows minus the leaf-sibling
        // one for MLID; 7+7 destination-split flows for SLID). The
        // schemes only separate on *skewed* matrices — see
        // `all_to_one_matrix_separates_the_schemes`.
        let n = 16u32;
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let l = loads(4, 3, kind);
            assert_eq!(l.max_up, n - 2, "{kind}");
        }
    }

    #[test]
    fn all_to_one_matrix_separates_the_schemes() {
        // Every node sends one flow to node 0 — the hot-spot matrix. MLID
        // bounds the upward load at 1 everywhere; SLID concentrates the
        // whole column onto shared up-links.
        for (m, n) in [(4, 3), (8, 2), (16, 2)] {
            let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
            let flows: Vec<_> = (1..net.num_nodes() as u32)
                .map(|s| (NodeId(s), NodeId(0)))
                .collect();
            let mlid = Routing::build(&net, RoutingKind::Mlid);
            let slid = Routing::build(&net, RoutingKind::Slid);
            let lm = loads_for_matrix(&net, &mlid, &flows).unwrap();
            let ls = loads_for_matrix(&net, &slid, &flows).unwrap();
            assert_eq!(lm.max_up, 1, "IBFT({m},{n}): MLID upward exclusivity");
            assert!(
                ls.max_up as u64 >= (net.num_nodes() as u64 - 1) / u64::from(m),
                "IBFT({m},{n}): SLID should concentrate ({} flows on one up-link)",
                ls.max_up
            );
        }
    }

    #[test]
    fn every_edge_link_carries_exactly_n_minus_one_flows() {
        // All-to-all: every node sends N-1 flows over its injection link
        // and receives N-1 over its delivery link.
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let l = all_to_all_loads(&net, &routing).unwrap();
        let nodes = net.num_nodes() as u32;
        for node in 0..nodes {
            let injection = l.per_link[&(DeviceRef::Node(NodeId(node)), PortNum(1))];
            assert_eq!(injection, nodes - 1);
        }
        // Delivery links: the leaf switch port toward each node.
        let mut delivered = 0u32;
        for (&(device, port), &load) in &l.per_link {
            if let DeviceRef::Switch(sw) = device {
                if let Some(peer) = net.peer_of(device, port) {
                    if matches!(peer.device, DeviceRef::Node(_)) {
                        assert_eq!(load, nodes - 1, "delivery link of {sw}");
                        delivered += 1;
                    }
                }
            }
        }
        assert_eq!(delivered, nodes);
    }

    #[test]
    fn load_of_and_hottest_agree_with_the_raw_map() {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Slid);
        let flows: Vec<_> = (1..net.num_nodes() as u32)
            .map(|s| (NodeId(s), NodeId(0)))
            .collect();
        let l = loads_for_matrix(&net, &routing, &flows).unwrap();
        // load_of mirrors the map and returns 0 off the map.
        for (&(device, port), &load) in &l.per_link {
            assert_eq!(l.load_of(device, port), load);
        }
        assert_eq!(l.load_of(DeviceRef::Node(NodeId(0)), PortNum(1)), 0);
        // hottest(k) is sorted, truncated, consistent with max(), and
        // deterministic (a second call yields the identical ranking).
        let top = l.hottest(5);
        assert_eq!(top.len(), 5.min(l.used_links));
        assert_eq!(top[0].2, l.max());
        assert!(top.windows(2).all(|w| w[0].2 >= w[1].2));
        assert_eq!(top, l.hottest(5));
        assert_eq!(l.hottest(usize::MAX).len(), l.used_links);
    }

    #[test]
    fn custom_matrix_loads() {
        // The paper's Figure 11 scenario: gcpg(0,1) -> P(100). Four flows,
        // each upward link used at most once under MLID.
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let flows: Vec<_> = (0..4).map(|s| (NodeId(s), NodeId(4))).collect();
        let l = loads_for_matrix(&net, &routing, &flows).unwrap();
        assert_eq!(l.max_up, 1, "paper's routes Q,R,S,T are upward-disjoint");
        // Under SLID the same four flows pile onto shared up-links.
        let slid = Routing::build(&net, RoutingKind::Slid);
        let ls = loads_for_matrix(&net, &slid, &flows).unwrap();
        assert!(ls.max_up >= 2);
    }
}
