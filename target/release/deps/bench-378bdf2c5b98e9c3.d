/root/repo/target/release/deps/bench-378bdf2c5b98e9c3.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/release/deps/bench-378bdf2c5b98e9c3: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
