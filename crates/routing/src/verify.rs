//! Whole-subnet verification passes over a programmed routing.
//!
//! These are the correctness obligations of any InfiniBand routing (every
//! DLID must be deliverable from everywhere) plus the structural claims the
//! paper makes for MLID (minimality; upward-phase exclusivity).

use crate::{Routing, RoutingError, RoutingKind};
use ibfat_topology::{analysis, Network, NodeId};
use std::collections::HashMap;

/// Verify that **every** assigned LID, injected from **every** source node,
/// is delivered to its owner. This is stronger than checking only the
/// path-selection pairs: IBA switches must forward any DLID a host chooses
/// to use.
pub fn verify_all_lids_deliver(net: &Network, routing: &Routing) -> Result<(), RoutingError> {
    let space = routing.lid_space();
    for src in 0..net.num_nodes() as u32 {
        for lid_raw in 1..=space.max_lid().0 {
            let lid = crate::Lid(lid_raw);
            routing.trace(net, NodeId(src), lid)?;
        }
    }
    Ok(())
}

/// Verify that the route chosen by the scheme's path selection for every
/// ordered pair is *minimal*: `2 (n - alpha)` links.
pub fn verify_minimality(net: &Network, routing: &Routing) -> Result<(), RoutingError> {
    let params = net.params();
    for src in 0..net.num_nodes() as u32 {
        for dst in 0..net.num_nodes() as u32 {
            if src == dst {
                continue;
            }
            let (src, dst) = (NodeId(src), NodeId(dst));
            let dlid = routing.select_dlid(src, dst);
            let route = routing.trace(net, src, dlid)?;
            let expect = analysis::min_hops(params, src, dst) as usize;
            if route.num_links() != expect {
                return Err(RoutingError::PropertyViolation(format!(
                    "route {src}->{dst} uses {} links, minimum is {expect}",
                    route.num_links()
                )));
            }
        }
    }
    Ok(())
}

/// Verify the MLID scheme's headline property: across **all** ordered
/// (src, dst) pairs routed with the paper's path selection, each directed
/// *upward* link is used by at most one distinct source node. (Downward
/// links necessarily converge toward popular destinations; upward links
/// never do under MLID.)
///
/// For the SLID baseline this property fails by design, and the function
/// returns the number of conflicted upward links instead of an error so
/// callers can report the contrast.
pub fn verify_upward_link_exclusivity(
    net: &Network,
    routing: &Routing,
) -> Result<usize, RoutingError> {
    let params = net.params();
    // upward link -> set of sources seen
    let mut users: HashMap<(u32, u8), NodeId> = HashMap::new();
    let mut conflicts = 0usize;
    let mut conflicted: std::collections::HashSet<(u32, u8)> = std::collections::HashSet::new();
    for src in 0..net.num_nodes() as u32 {
        for dst in 0..net.num_nodes() as u32 {
            if src == dst {
                continue;
            }
            let (src, dst) = (NodeId(src), NodeId(dst));
            let dlid = routing.select_dlid(src, dst);
            let route = routing.trace(net, src, dlid)?;
            for (sw, port) in route.upward_links(params) {
                match users.insert((sw.0, port.0), src) {
                    Some(prev) if prev != src && conflicted.insert((sw.0, port.0)) => {
                        conflicts += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    if conflicts > 0 && routing.kind() == RoutingKind::Mlid {
        return Err(RoutingError::PropertyViolation(format!(
            "MLID upward-link exclusivity violated on {conflicts} links"
        )));
    }
    Ok(conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    fn build(m: u32, n: u32, kind: RoutingKind) -> (Network, Routing) {
        let params = TreeParams::new(m, n).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, kind);
        (net, routing)
    }

    #[test]
    fn mlid_delivers_every_lid_everywhere() {
        for (m, n) in [(4, 2), (4, 3), (8, 2)] {
            let (net, routing) = build(m, n, RoutingKind::Mlid);
            verify_all_lids_deliver(&net, &routing)
                .unwrap_or_else(|e| panic!("IBFT({m},{n}): {e}"));
        }
    }

    #[test]
    fn slid_delivers_every_lid_everywhere() {
        for (m, n) in [(4, 2), (4, 3), (8, 2)] {
            let (net, routing) = build(m, n, RoutingKind::Slid);
            verify_all_lids_deliver(&net, &routing)
                .unwrap_or_else(|e| panic!("IBFT({m},{n}): {e}"));
        }
    }

    #[test]
    fn both_schemes_route_minimally() {
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            let (net, routing) = build(4, 3, kind);
            verify_minimality(&net, &routing).unwrap();
        }
    }

    #[test]
    fn mlid_upward_links_are_exclusive_slid_ones_are_not() {
        let (net, mlid) = build(4, 3, RoutingKind::Mlid);
        assert_eq!(verify_upward_link_exclusivity(&net, &mlid).unwrap(), 0);

        let (net, slid) = build(4, 3, RoutingKind::Slid);
        let conflicts = verify_upward_link_exclusivity(&net, &slid).unwrap();
        assert!(conflicts > 0, "SLID should share upward links");
    }
}
