/root/repo/target/debug/deps/figures-3e9b4fb1495b8db1.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3e9b4fb1495b8db1: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
