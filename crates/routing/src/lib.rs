//! # ibfat-routing
//!
//! LID addressing and deterministic routing for fat-tree-based InfiniBand
//! subnets, implementing the paper's **MLID** (Multiple LID) scheme — node
//! addressing, path selection, and forwarding-table assignment — together
//! with the **SLID** (Single LID) baseline it is evaluated against, plus a
//! generic **up\*/down\*** engine representative of the irregular-topology
//! algorithms the paper contrasts with.
//!
//! Routing in an InfiniBand subnet is deterministic: each switch holds a
//! linear forwarding table (LFT) mapping the `DLID` field of a packet to an
//! output port. Multipathing is achieved through the LID Mask Control (LMC)
//! mechanism: an endport owns `2^LMC` consecutive LIDs, and the choice of
//! DLID selects the path.
//!
//! ## The MLID scheme in one paragraph
//!
//! Every node `P(p)` receives `2^LMC` LIDs starting at
//! `BaseLID(P(p)) = PID(P(p)) * 2^LMC + 1` with `LMC = (n-1)·log2(m/2)`.
//! A source with rank `r` in its greatest-common-prefix subgroup (relative
//! to the destination) sends to `BaseLID(dst) + r`. Switches forward by two
//! rules: if the LID's owner lies below the switch, descend toward it
//! (Equation 1, `k = p_l + 1`); otherwise climb, choosing the up-port from a
//! digit of the LID's offset (Equation 2,
//! `k = (⌊(lid-1)/(m/2)^(n-1-l)⌋ mod m/2) + m/2 + 1`). The offset digits
//! encode the *source* label, which gives the scheme its headline property:
//! **every upward link carries the traffic of exactly one source node**, so
//! concurrent senders to a common hot spot fan out over all available least
//! common ancestors instead of colliding (the paper's Figure 9).
//!
//! ## Example
//!
//! ```
//! use ibfat_topology::{Network, NodeId, TreeParams};
//! use ibfat_routing::{Routing, RoutingKind};
//!
//! let params = TreeParams::new(4, 3).unwrap();
//! let net = Network::mport_ntree(params);
//! let routing = Routing::build(&net, RoutingKind::Mlid);
//!
//! let dlid = routing.select_dlid(NodeId(0), NodeId(4));
//! let route = routing.trace(&net, NodeId(0), dlid).unwrap();
//! assert_eq!(route.num_links(), 6); // up 3, down 3 in FT(4, 3)
//! ```

mod deadlock;
mod error;
mod fault;
mod lft;
mod lid;
mod load;
mod mlid;
mod oracle;
mod path;
mod scheme;
mod slid;
mod updown;
mod verify;

pub use deadlock::{channel_dependency_graph, verify_deadlock_free, CdgReport};
pub use error::RoutingError;
pub use fault::{build_fault_tolerant, repair_fault_tolerant, LftPatch, RepairState, RepairStats};
pub use lft::Lft;
pub use lid::{Lid, LidSpace};
pub use load::{all_to_all_loads, all_to_all_loads_oracle, loads_for_matrix, ChannelLoads};
pub use mlid::MlidScheme;
pub use oracle::RouteOracle;
pub use path::{Hop, Route};
pub use scheme::{Routing, RoutingKind, RoutingScheme};
pub use slid::SlidScheme;
pub use updown::UpDownScheme;
pub use verify::{verify_all_lids_deliver, verify_minimality, verify_upward_link_exclusivity};
