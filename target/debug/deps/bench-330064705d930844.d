/root/repo/target/debug/deps/bench-330064705d930844.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libbench-330064705d930844.rmeta: crates/bench/src/lib.rs crates/bench/src/trajectory.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
