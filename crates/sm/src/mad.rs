//! Directed-route management datagrams (SMPs) and the subnet bring-up
//! cost model.
//!
//! Before LIDs are assigned, the subnet manager can only address devices
//! by *directed route*: "leave my port, then exit port 3, then port 5…".
//! Real IBA subnet-management packets (SMPs, IBA §14) carry exactly that
//! port vector plus a hop pointer; switches forward them in hardware on
//! the management VL. This module models directed routes over the cabled
//! graph, drives a discovery sweep through them, and prices the whole
//! initialization — the phase the paper attributes to the SM ("the SM is
//! responsible for the configuration and the control of a subnet").
//!
//! Costs follow the data-path constants (an SMP is one 256-byte MAD on
//! the wire) plus a subnet-management-agent processing time per visit.
//! LFT installation is priced as real subnet managers pay it: one SMP per
//! 64-entry `LinearForwardingTable` block per switch.

use crate::{discover, recognize, DiscoveredTopology};
use ibfat_topology::{DeviceKind, DeviceRef, Network, NodeId, PortNum};
use std::collections::{HashMap, VecDeque};

/// A directed route: the port to exit at each successive device, starting
/// from the SM host's endport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectedRoute {
    /// Output port at each hop (the first entry is always the host's
    /// port 1).
    pub ports: Vec<PortNum>,
}

impl DirectedRoute {
    /// Number of link traversals.
    pub fn hops(&self) -> usize {
        self.ports.len()
    }

    /// Walk the route from `host` over live cables; returns the device
    /// reached, or `None` if a hop is uncabled or exits a node mid-route.
    pub fn walk(&self, net: &Network, host: NodeId) -> Option<DeviceRef> {
        let mut at = DeviceRef::Node(host);
        for &port in &self.ports {
            let peer = net.peer_of(at, port)?;
            at = peer.device;
        }
        Some(at)
    }
}

/// Timing constants for SMP exchanges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MadCosts {
    /// Wire flying time per hop, ns (same wire as data).
    pub fly_ns: u64,
    /// Per-switch forwarding time for a directed-route SMP, ns.
    pub forward_ns: u64,
    /// SMP serialization time (256-byte MAD at 1 ns/byte), ns.
    pub packet_ns: u64,
    /// Subnet-management-agent processing per request, ns.
    pub sma_ns: u64,
}

impl Default for MadCosts {
    fn default() -> Self {
        MadCosts {
            fly_ns: 20,
            forward_ns: 100,
            packet_ns: 256,
            sma_ns: 2_000,
        }
    }
}

impl MadCosts {
    /// Round-trip cost of one SMP exchange over a route of `hops` links:
    /// request out, SMA processing, response back. The packet pays
    /// serialization once per direction (cut-through pipelining across
    /// hops), forwarding at every intermediate device, and flight per
    /// link.
    pub fn round_trip_ns(&self, hops: usize) -> u64 {
        let h = hops as u64;
        let one_way = self.packet_ns + h * self.fly_ns + h.saturating_sub(1) * self.forward_ns;
        2 * one_way + self.sma_ns
    }
}

/// What a timed bring-up did.
#[derive(Debug, Clone, PartialEq)]
pub struct BringUpReport {
    /// Discovery SMPs (NodeInfo per device + PortInfo per switch port).
    pub discovery_smps: u64,
    /// LID-assignment SMPs (one PortInfo(Set) per endport).
    pub lid_smps: u64,
    /// LFT-programming SMPs (64-entry blocks per switch).
    pub lft_smps: u64,
    /// Estimated serial bring-up time, ns (SMPs issued one at a time, as
    /// a simple SM does).
    pub total_time_ns: u64,
    /// Longest directed route used.
    pub max_route_hops: usize,
}

impl BringUpReport {
    /// All SMPs issued.
    pub fn total_smps(&self) -> u64 {
        self.discovery_smps + self.lid_smps + self.lft_smps
    }
}

/// Compute shortest directed routes from `host` to every device, walking
/// only live cables (breadth-first, exactly the order a sweep discovers
/// devices).
pub fn directed_routes(net: &Network, host: NodeId) -> HashMap<DeviceRef, DirectedRoute> {
    let mut routes: HashMap<DeviceRef, DirectedRoute> = HashMap::new();
    let mut queue = VecDeque::new();
    routes.insert(DeviceRef::Node(host), DirectedRoute { ports: Vec::new() });
    queue.push_back(DeviceRef::Node(host));
    while let Some(here) = queue.pop_front() {
        let base = routes[&here].clone();
        for (port, peer) in net.device(here).peers() {
            if routes.contains_key(&peer.device) {
                continue;
            }
            let mut ports = base.ports.clone();
            ports.push(port);
            routes.insert(peer.device, DirectedRoute { ports });
            queue.push_back(peer.device);
        }
    }
    routes
}

/// Price a full subnet initialization from `host`: discovery sweep, LID
/// assignment, and LFT installation for a `max_lid`-entry table per
/// switch. Also returns the sweep itself for cross-checking.
pub fn time_bring_up(
    net: &Network,
    host: NodeId,
    costs: MadCosts,
) -> (BringUpReport, DiscoveredTopology) {
    let disc = discover(net, host);
    let routes = directed_routes(net, host);

    let mut discovery_smps = 0u64;
    let mut lid_smps = 0u64;
    let mut lft_smps = 0u64;
    let mut total_time_ns = 0u64;
    let mut max_route_hops = 0usize;

    // LFT size: if the fabric recognizes, use the MLID LID space; else a
    // one-LID-per-node table.
    let lids = match recognize(&disc) {
        Ok(rec) => rec.params.num_nodes() * rec.params.lids_per_node(),
        Err(_) => disc.nodes().count() as u32,
    };
    let lft_blocks = lids.div_ceil(64) as u64;

    for dev in &disc.devices {
        let route = &routes[&dev.handle];
        max_route_hops = max_route_hops.max(route.hops());
        let rt = costs.round_trip_ns(route.hops());
        match dev.kind {
            DeviceKind::Switch => {
                // NodeInfo + one PortInfo per external port + LFT blocks.
                let smps = 1 + u64::from(dev.num_ports);
                discovery_smps += smps;
                lft_smps += lft_blocks;
                total_time_ns += (smps + lft_blocks) * rt;
            }
            DeviceKind::Node => {
                // NodeInfo + PortInfo(Get) + PortInfo(Set LID/LMC).
                discovery_smps += 2;
                lid_smps += 1;
                total_time_ns += 3 * rt;
            }
        }
    }

    (
        BringUpReport {
            discovery_smps,
            lid_smps,
            lft_smps,
            total_time_ns,
            max_route_hops,
        },
        disc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::TreeParams;

    fn net(m: u32, n: u32) -> Network {
        Network::mport_ntree(TreeParams::new(m, n).unwrap())
    }

    #[test]
    fn directed_routes_reach_every_device() {
        let net = net(4, 3);
        let routes = directed_routes(&net, NodeId(0));
        assert_eq!(routes.len(), net.num_nodes() + net.num_switches());
        for (dev, route) in &routes {
            assert_eq!(route.walk(&net, NodeId(0)), Some(*dev), "{dev}");
        }
    }

    #[test]
    fn routes_are_shortest() {
        // The directed route to another node must match the fat-tree
        // minimal hop count (via analysis::min_hops).
        let network = net(4, 3);
        let params = network.params();
        let routes = directed_routes(&network, NodeId(0));
        for dst in 1..params.num_nodes() {
            let route = &routes[&DeviceRef::Node(NodeId(dst))];
            assert_eq!(
                route.hops() as u32,
                ibfat_topology::analysis::min_hops(params, NodeId(0), NodeId(dst)),
                "node {dst}"
            );
        }
    }

    #[test]
    fn walk_fails_on_dead_ports() {
        let mut network = net(4, 2);
        let idx = network.inter_switch_link_indices()[0];
        let link = network.remove_link(idx);
        // A route that tries to cross the failed cable dies at the hop.
        let host = NodeId(0);
        let full = Network::mport_ntree(network.params());
        let routes = directed_routes(&full, host);
        // Find any device whose (full-fabric) route used the dead cable.
        let dead_from = link.a;
        let affected = routes.iter().find(|(_, r)| {
            let mut at = DeviceRef::Node(host);
            for &port in &r.ports {
                if at == dead_from.device && port == dead_from.port {
                    return true;
                }
                match full.peer_of(at, port) {
                    Some(p) => at = p.device,
                    None => return false,
                }
            }
            false
        });
        if let Some((_, route)) = affected {
            assert_eq!(route.walk(&network, host), None);
        }
    }

    #[test]
    fn round_trip_cost_formula() {
        let c = MadCosts::default();
        // 1 hop: 2 * (256 + 20) + 2000 = 2552.
        assert_eq!(c.round_trip_ns(1), 2552);
        // 3 hops: one way = 256 + 60 + 200 = 516; total 3032.
        assert_eq!(c.round_trip_ns(3), 3032);
        assert!(c.round_trip_ns(5) > c.round_trip_ns(3));
    }

    #[test]
    fn bring_up_counts_scale_with_the_fabric() {
        let small = time_bring_up(&net(4, 2), NodeId(0), MadCosts::default()).0;
        let large = time_bring_up(&net(8, 3), NodeId(0), MadCosts::default()).0;
        assert!(large.total_smps() > small.total_smps());
        assert!(large.total_time_ns > small.total_time_ns);
        // FT(4,2): 6 switches x (1 + 4) discovery SMPs + 8 nodes x 2.
        assert_eq!(small.discovery_smps, 6 * 5 + 8 * 2);
        assert_eq!(small.lid_smps, 8);
        // MLID LID space: 8 nodes x 2 LIDs = 16 -> 1 block per switch.
        assert_eq!(small.lft_smps, 6);
    }

    #[test]
    fn bring_up_time_is_sub_second_even_for_the_largest_config() {
        let network = net(32, 2);
        let (report, disc) = time_bring_up(&network, NodeId(0), MadCosts::default());
        assert_eq!(
            disc.devices.len(),
            network.num_nodes() + network.num_switches()
        );
        // 512 nodes + 48 switches: well under 100 ms of serial SMPs.
        assert!(report.total_time_ns < 100_000_000);
        assert!(report.max_route_hops <= 4);
    }
}
