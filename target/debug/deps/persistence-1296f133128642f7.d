/root/repo/target/debug/deps/persistence-1296f133128642f7.d: crates/core/tests/persistence.rs

/root/repo/target/debug/deps/libpersistence-1296f133128642f7.rmeta: crates/core/tests/persistence.rs

crates/core/tests/persistence.rs:
