//! Structural analysis of `IBFT(m, n)`: hop distances, path multiplicity,
//! and graph-wide sanity measures used by tests, examples and EXPERIMENTS.md.

use crate::{gcp_len, DeviceRef, Network, NodeId, NodeLabel, Peer, PortNum, TreeParams};
use std::collections::VecDeque;

/// The minimal number of *links* a packet traverses from node `a` to node
/// `b`, predicted analytically from the label algebra: with greatest common
/// prefix length `alpha`, the packet climbs to a level-`alpha` LCA and back:
/// `2 * (n - alpha)` links. Zero when `a == b`.
pub fn min_hops(params: TreeParams, a: NodeId, b: NodeId) -> u32 {
    if a == b {
        return 0;
    }
    let la = NodeLabel::from_id(params, a);
    let lb = NodeLabel::from_id(params, b);
    let alpha = gcp_len(&la, &lb);
    2 * (params.n() - alpha)
}

/// The number of distinct shortest paths between two distinct nodes:
/// `(m/2)^(n-1-alpha)` — one per least common ancestor (the descent from a
/// given LCA is unique).
pub fn num_shortest_paths(params: TreeParams, a: NodeId, b: NodeId) -> u32 {
    assert_ne!(a, b);
    let la = NodeLabel::from_id(params, a);
    let lb = NodeLabel::from_id(params, b);
    params.num_lcas(gcp_len(&la, &lb))
}

/// Breadth-first hop distance over the actual cabled graph, for verifying
/// [`min_hops`] against the construction. Distances are counted in links.
pub fn bfs_hops(net: &Network, from: NodeId) -> Vec<u32> {
    let params = net.params();
    let num_devices = net.num_nodes() + net.num_switches();
    let idx = |d: DeviceRef| -> usize {
        match d {
            DeviceRef::Node(n) => n.index(),
            DeviceRef::Switch(s) => net.num_nodes() + s.index(),
        }
    };
    let mut dist = vec![u32::MAX; num_devices];
    let mut queue = VecDeque::new();
    dist[idx(DeviceRef::Node(from))] = 0;
    queue.push_back(DeviceRef::Node(from));
    while let Some(d) = queue.pop_front() {
        let here = dist[idx(d)];
        for (_, Peer { device, .. }) in net.device(d).peers() {
            let slot = &mut dist[idx(device)];
            if *slot == u32::MAX {
                *slot = here + 1;
                queue.push_back(device);
            }
        }
    }
    (0..params.num_nodes())
        .map(|i| dist[idx(DeviceRef::Node(NodeId(i)))])
        .collect()
}

/// The average inter-node hop distance over all ordered pairs of distinct
/// nodes, computed analytically.
pub fn average_min_hops(params: TreeParams) -> f64 {
    let total_nodes = params.num_nodes() as u64;
    let mut weighted = 0u64;
    // Group pairs by alpha: the number of ordered pairs with gcp length
    // exactly alpha. A node has gcpg_size(alpha) - gcpg_size(alpha+1)
    // partners at exactly alpha (for alpha < n).
    for alpha in 0..params.n() {
        let at_least = params.gcpg_size(alpha) as u64;
        let deeper = if alpha < params.n() {
            params.gcpg_size(alpha + 1) as u64
        } else {
            1
        };
        let exactly = at_least - deeper;
        weighted += total_nodes * exactly * u64::from(2 * (params.n() - alpha));
    }
    weighted as f64 / (total_nodes * (total_nodes - 1)) as f64
}

/// Counts of up-going and down-going ports per switch level, a quick
/// digest of the wiring used in docs and examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelWiring {
    /// Tree level (0 = roots).
    pub level: u32,
    /// Switches at this level.
    pub switches: u32,
    /// Down-cables per switch.
    pub down_per_switch: u32,
    /// Up-cables per switch.
    pub up_per_switch: u32,
}

/// Per-level wiring digest.
pub fn level_wiring(params: TreeParams) -> Vec<LevelWiring> {
    (0..params.n())
        .map(|l| LevelWiring {
            level: l,
            switches: params.switches_at_level(l),
            down_per_switch: if l == 0 { params.m() } else { params.half() },
            up_per_switch: if l == 0 { 0 } else { params.half() },
        })
        .collect()
}

/// The port on `switch` through which `node` is reached going *down*, if the
/// node lies in the switch's subtree. Derived from labels, not BFS:
/// `SW<w, l>` reaches `P(p)` downward iff `p_0..p_{l-1} = w_0..w_{l-1}`, in
/// which case the next hop is down-port `p_l` (0-based).
pub fn down_port_towards(
    _params: TreeParams,
    switch: crate::SwitchLabel,
    node: &NodeLabel,
) -> Option<PortNum> {
    let l = switch.level().index();
    let matches = (0..l).all(|i| switch.digit(i) == node.digit(i));
    if matches {
        Some(PortNum(node.digit(l) + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, SwitchLabel};

    #[test]
    fn bfs_agrees_with_analytic_min_hops() {
        for (m, n) in [(4, 2), (4, 3), (8, 2)] {
            let params = TreeParams::new(m, n).unwrap();
            let net = Network::mport_ntree(params);
            for a in 0..params.num_nodes() {
                let dist = bfs_hops(&net, NodeId(a));
                for b in 0..params.num_nodes() {
                    assert_eq!(
                        dist[b as usize],
                        min_hops(params, NodeId(a), NodeId(b)),
                        "IBFT({m},{n}) {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn shortest_path_counts() {
        let params = TreeParams::new(4, 3).unwrap();
        // Distant nodes: 4 paths (through the 4 roots).
        assert_eq!(num_shortest_paths(params, NodeId(0), NodeId(15)), 4);
        // Leaf siblings: unique path through their leaf switch.
        assert_eq!(num_shortest_paths(params, NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn average_hops_matches_brute_force() {
        let params = TreeParams::new(4, 3).unwrap();
        let n = params.num_nodes();
        let mut total = 0u64;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    total += u64::from(min_hops(params, NodeId(a), NodeId(b)));
                }
            }
        }
        let brute = total as f64 / (u64::from(n) * u64::from(n - 1)) as f64;
        let analytic = average_min_hops(params);
        assert!((brute - analytic).abs() < 1e-9, "{brute} vs {analytic}");
    }

    #[test]
    fn down_port_lookup() {
        let params = TreeParams::new(4, 3).unwrap();
        let root = SwitchLabel::new(params, &[0, 0], Level(0)).unwrap();
        let node = NodeLabel::new(params, &[3, 1, 0]).unwrap();
        // A root reaches every node; next hop is digit 0 of the label.
        assert_eq!(down_port_towards(params, root, &node), Some(PortNum(4)));
        let wrong_leaf = SwitchLabel::new(params, &[0, 0], Level(2)).unwrap();
        assert_eq!(down_port_towards(params, wrong_leaf, &node), None);
    }

    #[test]
    fn wiring_digest() {
        let params = TreeParams::new(4, 3).unwrap();
        let w = level_wiring(params);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].down_per_switch, 4);
        assert_eq!(w[0].up_per_switch, 0);
        assert_eq!(w[2].down_per_switch, 2);
        assert_eq!(w[2].up_per_switch, 2);
    }
}
