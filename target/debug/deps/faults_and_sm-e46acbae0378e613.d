/root/repo/target/debug/deps/faults_and_sm-e46acbae0378e613.d: tests/faults_and_sm.rs

/root/repo/target/debug/deps/faults_and_sm-e46acbae0378e613: tests/faults_and_sm.rs

tests/faults_and_sm.rs:
