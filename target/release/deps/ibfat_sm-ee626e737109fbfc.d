/root/repo/target/release/deps/ibfat_sm-ee626e737109fbfc.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/release/deps/ibfat_sm-ee626e737109fbfc: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
