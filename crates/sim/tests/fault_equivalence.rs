//! The fault subsystem's determinism contract.
//!
//! Mid-run fault injection must not cost the engine its headline
//! guarantee: a faulted run — link kills, switch kills, revives, under
//! either dead-port policy — produces a `SimReport` (and therefore a
//! `DisruptionReport`) bit-identical to the sequential engine at any
//! thread count. Fault events are global, scheduled from the plan
//! rather than from any shard's dispatch, so the proof obligation is
//! that the synthetic calendar keys order them exactly like the
//! sequential FIFO. These tests are that proof's regression harness.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    disruption_report, generators, run_once, run_once_par, run_workload, run_workload_par,
    FaultAction, FaultEvent, FaultPlan, FaultPolicy, RunSpec, SimConfig, SimReport, TrafficPattern,
};
use ibfat_topology::{Network, TreeParams};
use proptest::prelude::*;

fn normalized(mut r: SimReport) -> SimReport {
    r.events_per_sec = 0.0;
    r.packets_per_sec = 0.0;
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seeded link kills mid-run, both policies, optional revival of
    /// the first casualty: same report at 1, 2, and 4 threads.
    #[test]
    fn faulted_reports_equal_sequential(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2))],
        k in 1usize..=3,
        seed in any::<u64>(),
        policy in prop_oneof![Just(FaultPolicy::Drop), Just(FaultPolicy::Stall)],
        revive in any::<bool>(),
    ) {
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let kill = FaultPlan::pick_links(&net, k, seed);
        let mut plan = FaultPlan::kill_links_at(&kill, 8_000);
        plan.policy = policy;
        // Fast reconvergence, so the reprogram (patch + rescue) path
        // lands inside the horizon and gets cross-engine coverage.
        plan.detect_ns = 1_000;
        plan.per_switch_ns = 50;
        if revive {
            plan.events.push(FaultEvent {
                at_ns: 20_000,
                action: FaultAction::ReviveLink(kill[0]),
            });
        }
        plan.validate(&net).expect("plan must be legal");
        let cfg = SimConfig {
            num_vls: 2,
            seed,
            faults: plan,
            ..SimConfig::default()
        };
        let spec = RunSpec::new(0.5, 30_000);
        let seq = normalized(run_once(
            &net, &routing, cfg.clone(), TrafficPattern::Uniform, spec,
        ));
        prop_assert!(seq.delivered > 0, "the faulted run must carry traffic");
        for threads in [1usize, 2, 4] {
            let par = normalized(run_once_par(
                &net, &routing, cfg.clone(), TrafficPattern::Uniform, spec, threads,
            ));
            prop_assert_eq!(&par, &seq, "divergence at {} threads", threads);
        }
    }
}

/// The acceptance fixed point, pinned: a mid-run double link kill on
/// FT(4,3) under the Drop policy actually loses packets, and the full
/// report — engine counters and the derived `DisruptionReport` — is
/// bit-identical across the sequential and threaded engines.
#[test]
fn pinned_link_kill_disruption_is_bit_identical() {
    let net = Network::mport_ntree(TreeParams::new(4, 3).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let kill = FaultPlan::pick_links(&net, 2, 0xFA_017);
    let mut plan = FaultPlan::kill_links_at(&kill, 10_000);
    plan.detect_ns = 2_000;
    plan.per_switch_ns = 100;
    let cfg = SimConfig {
        num_vls: 2,
        seed: 0xFA_017,
        faults: plan.clone(),
        ..SimConfig::default()
    };
    let spec = RunSpec::new(0.7, 60_000);
    let seq = normalized(run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    assert!(
        seq.fault_lost > 0,
        "a dead cable under load must drop packets"
    );
    let seq_disruption = disruption_report(&net, &routing, &plan, &seq);
    assert_eq!(seq_disruption.packets_lost, seq.fault_lost);
    assert_eq!(seq_disruption.faults.len(), 2);
    assert!(seq_disruption.survival.surviving_paths > seq_disruption.slid_survival.surviving_paths);
    for threads in [2usize, 4] {
        let par = normalized(run_once_par(
            &net,
            &routing,
            cfg.clone(),
            TrafficPattern::Uniform,
            spec,
            threads,
        ));
        assert_eq!(par, seq, "report divergence at {threads} threads");
        assert_eq!(
            disruption_report(&net, &routing, &plan, &par),
            seq_disruption,
            "disruption divergence at {threads} threads"
        );
    }
}

/// The Stall policy parks heads instead of dropping them, and SM
/// reprogramming rescues the parked heads — all deterministically.
#[test]
fn pinned_stall_policy_rescues_parked_heads() {
    let net = Network::mport_ntree(TreeParams::new(4, 3).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let kill = FaultPlan::pick_links(&net, 2, 7);
    let mut plan = FaultPlan::kill_links_at(&kill, 10_000);
    plan.policy = FaultPolicy::Stall;
    plan.detect_ns = 2_000;
    plan.per_switch_ns = 100;
    let cfg = SimConfig {
        num_vls: 2,
        seed: 7,
        faults: plan,
        ..SimConfig::default()
    };
    let spec = RunSpec::new(0.7, 60_000);
    let seq = normalized(run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    assert_eq!(seq.fault_lost, 0, "the lossless policy must not drop");
    assert!(seq.fault_stalled > 0, "heads must park on the dead ports");
    assert!(
        seq.fault_rerouted > 0,
        "SM reprogramming must rescue parked heads"
    );
    for threads in [2usize, 4] {
        let par = normalized(run_once_par(
            &net,
            &routing,
            cfg.clone(),
            TrafficPattern::Uniform,
            spec,
            threads,
        ));
        assert_eq!(par, seq, "divergence at {threads} threads");
    }
}

/// Killing a whole switch mid-run (and powering it back on later) is
/// the harshest global event — every incident cable dies at once and
/// in-flight events at the switch are squelched. Still bit-identical.
#[test]
fn pinned_switch_kill_and_revive_is_bit_identical() {
    let net = Network::mport_ntree(TreeParams::new(4, 3).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    // A root switch: no attached nodes, so injection is unaffected and
    // the damage is purely forwarding capacity.
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                at_ns: 10_000,
                action: FaultAction::KillSwitch(0),
            },
            FaultEvent {
                at_ns: 30_000,
                action: FaultAction::ReviveSwitch(0),
            },
        ],
        detect_ns: 2_000,
        per_switch_ns: 100,
        ..FaultPlan::default()
    };
    plan.validate(&net).expect("plan must be legal");
    let cfg = SimConfig {
        num_vls: 2,
        seed: 0xDEAD,
        faults: plan,
        ..SimConfig::default()
    };
    let spec = RunSpec::new(0.6, 60_000);
    let seq = normalized(run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    assert!(seq.delivered > 0);
    for threads in [2usize, 4] {
        let par = normalized(run_once_par(
            &net,
            &routing,
            cfg.clone(),
            TrafficPattern::Uniform,
            spec,
            threads,
        ));
        assert_eq!(par, seq, "divergence at {threads} threads");
    }
}

/// A collective running *through* a link failure: the Stall policy is
/// lossless, so the workload DAG completes on the repaired tables, and
/// the per-message timestamps are bit-identical across thread counts.
#[test]
fn workload_completes_through_link_failure() {
    let net = Network::mport_ntree(TreeParams::new(4, 2).expect("valid params"));
    let nodes = net.num_nodes() as u32;
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let kill = FaultPlan::pick_links(&net, 1, 3);
    let mut plan = FaultPlan::kill_links_at(&kill, 5_000);
    plan.policy = FaultPolicy::Stall;
    plan.detect_ns = 2_000;
    plan.per_switch_ns = 100;
    let cfg = SimConfig {
        num_vls: 2,
        seed: 3,
        faults: plan,
        ..SimConfig::default()
    };
    let wl = generators::allreduce_ring(nodes, 4096);
    let seq = run_workload(&net, &routing, cfg.clone(), &wl);
    assert_eq!(
        seq.messages as usize,
        wl.messages.len(),
        "the DAG must complete despite the mid-run failure"
    );
    for threads in [2usize, 4] {
        let par = run_workload_par(&net, &routing, cfg.clone(), &wl, threads);
        assert_eq!(par, seq, "divergence at {threads} threads");
    }
}

/// An empty plan is the engine's pre-fault fast path: a run with
/// `FaultPlan::default()` equals a run built before the subsystem
/// existed (no counters move, no events are scheduled).
#[test]
fn empty_plan_is_inert() {
    let net = Network::mport_ntree(TreeParams::new(4, 2).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let spec = RunSpec::new(0.4, 30_000);
    let base = SimConfig {
        seed: 11,
        ..SimConfig::default()
    };
    let plain = normalized(run_once(
        &net,
        &routing,
        base.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    let with_empty = normalized(run_once(
        &net,
        &routing,
        SimConfig {
            faults: FaultPlan::default(),
            ..base
        },
        TrafficPattern::Uniform,
        spec,
    ));
    assert_eq!(with_empty, plain);
    assert_eq!(plain.fault_lost, 0);
    assert_eq!(plain.fault_stalled, 0);
    assert_eq!(plain.fault_rerouted, 0);
}
