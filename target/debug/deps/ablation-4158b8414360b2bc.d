/root/repo/target/debug/deps/ablation-4158b8414360b2bc.d: crates/bench/src/bin/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-4158b8414360b2bc.rmeta: crates/bench/src/bin/ablation.rs Cargo.toml

crates/bench/src/bin/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
