/root/repo/target/debug/deps/ibfat_cli-a0290416d330f480.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libibfat_cli-a0290416d330f480.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libibfat_cli-a0290416d330f480.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
