/root/repo/target/debug/deps/serde-61216a3b591a43cf.d: /root/stubdeps/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-61216a3b591a43cf.rmeta: /root/stubdeps/serde/src/lib.rs

/root/stubdeps/serde/src/lib.rs:
