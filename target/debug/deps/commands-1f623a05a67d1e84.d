/root/repo/target/debug/deps/commands-1f623a05a67d1e84.d: crates/cli/tests/commands.rs

/root/repo/target/debug/deps/libcommands-1f623a05a67d1e84.rmeta: crates/cli/tests/commands.rs

crates/cli/tests/commands.rs:
