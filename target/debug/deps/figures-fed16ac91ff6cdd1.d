/root/repo/target/debug/deps/figures-fed16ac91ff6cdd1.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-fed16ac91ff6cdd1.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
