/root/repo/target/debug/deps/arbitration-89fa82b0cf1cf64e.d: crates/sim/tests/arbitration.rs

/root/repo/target/debug/deps/libarbitration-89fa82b0cf1cf64e.rmeta: crates/sim/tests/arbitration.rs

crates/sim/tests/arbitration.rs:
