//! Regenerates the paper's result figures: average message latency vs
//! accepted traffic for {SLID, MLID} × {1, 2, 4} virtual lanes, per
//! network size and traffic pattern.
//!
//! ```text
//! # One figure:
//! cargo run --release -p bench --bin figures -- --config 8x3 --pattern centric
//! # Everything (all 8 figures; writes results/*.csv + *.json):
//! cargo run --release -p bench --bin figures -- --all
//! ```
//!
//! Options:
//!   --config MxN        network size (default 4x3)
//!   --pattern P         uniform | centric | bitcomp (default uniform)
//!   --sim-time-us T     simulated microseconds per point (default 200)
//!   --loads a,b,c       offered-load grid (default 0.05..1.0)
//!   --vls a,b,c         VL counts (default 1,2,4)
//!   --out DIR           output directory for CSV/JSON (default results)
//!   --all               run the full 4-size × 2-pattern matrix

use bench::{figure_to_csv, loads_for, run_figure, EVAL_CONFIGS, EVAL_VLS};
use ib_fabric::prelude::*;
use std::path::PathBuf;

struct Args {
    configs: Vec<(u32, u32)>,
    /// `None` means "bit-complement, instantiated per config".
    patterns: Vec<Option<TrafficPattern>>,
    sim_time_ns: u64,
    /// Explicit load grid; `None` picks a per-(pattern, size) grid.
    loads: Option<Vec<f64>>,
    vls: Vec<u8>,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        configs: vec![(4, 3)],
        patterns: vec![Some(TrafficPattern::Uniform)],
        sim_time_ns: 200_000,
        loads: None,
        vls: EVAL_VLS.to_vec(),
        out: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--config" => {
                let v = value();
                let (m, n) = v
                    .split_once(['x', 'X'])
                    .unwrap_or_else(|| panic!("--config expects MxN, got {v}"));
                args.configs = vec![(m.parse().expect("ports"), n.parse().expect("levels"))];
            }
            "--pattern" => {
                args.patterns = vec![match value().as_str() {
                    "uniform" => Some(TrafficPattern::Uniform),
                    "centric" => Some(TrafficPattern::paper_centric()),
                    "bitcomp" => None,
                    other => panic!("unknown pattern {other}"),
                }];
            }
            "--sim-time-us" => args.sim_time_ns = value().parse::<u64>().expect("µs") * 1_000,
            "--loads" => {
                args.loads = Some(
                    value()
                        .split(',')
                        .map(|s| s.parse().expect("load"))
                        .collect(),
                );
            }
            "--vls" => {
                args.vls = value().split(',').map(|s| s.parse().expect("vl")).collect();
            }
            "--out" => args.out = PathBuf::from(value()),
            "--all" => {
                args.configs = EVAL_CONFIGS.to_vec();
                args.patterns = vec![
                    Some(TrafficPattern::Uniform),
                    Some(TrafficPattern::paper_centric()),
                ];
            }
            other => panic!("unknown flag {other} (see --help in the header comment)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");

    let mut fig_no = 12; // the paper's first result figure
    for &(m, n) in &args.configs {
        for pattern_opt in &args.patterns {
            let nodes = TreeParams::new(m, n).expect("valid config").num_nodes();
            let pattern = pattern_opt
                .clone()
                .unwrap_or_else(|| TrafficPattern::bit_complement(nodes));
            let loads = args
                .loads
                .clone()
                .unwrap_or_else(|| loads_for(&pattern, nodes));
            eprintln!(
                "running {m}-port {n}-tree / {} ({} loads x {} VLs x 2 schemes)…",
                pattern.name(),
                loads.len(),
                args.vls.len()
            );
            let fig = run_figure(m, n, &pattern, &loads, args.sim_time_ns, &args.vls);
            println!("{}", bench::render_figure_text(&fig));
            println!("{}", bench::render_figure_plot(&fig, 64, 18));

            let stem = format!("fig{}_{}x{}_{}", fig_no, m, n, fig.pattern);
            std::fs::write(args.out.join(format!("{stem}.csv")), figure_to_csv(&fig))
                .expect("write csv");
            std::fs::write(
                args.out.join(format!("{stem}.json")),
                serde_json::to_string_pretty(&fig).expect("figure serializes"),
            )
            .expect("write json");
            eprintln!("wrote {}/{stem}.{{csv,json}}", args.out.display());
            fig_no += 1;
        }
    }
}
