/root/repo/target/debug/deps/proptests-0dba488e3cf276e1.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-0dba488e3cf276e1.rmeta: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
