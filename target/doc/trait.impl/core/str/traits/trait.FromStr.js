(function() {
    const implementors = Object.fromEntries([["ibfat_routing",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"ibfat_routing/enum.RoutingKind.html\" title=\"enum ibfat_routing::RoutingKind\">RoutingKind</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[306]}