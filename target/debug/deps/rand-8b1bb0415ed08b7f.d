/root/repo/target/debug/deps/rand-8b1bb0415ed08b7f.d: /root/stubdeps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8b1bb0415ed08b7f.rlib: /root/stubdeps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8b1bb0415ed08b7f.rmeta: /root/stubdeps/rand/src/lib.rs

/root/stubdeps/rand/src/lib.rs:
