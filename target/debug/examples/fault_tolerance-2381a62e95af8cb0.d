/root/repo/target/debug/examples/fault_tolerance-2381a62e95af8cb0.d: examples/fault_tolerance.rs

/root/repo/target/debug/examples/libfault_tolerance-2381a62e95af8cb0.rmeta: examples/fault_tolerance.rs

examples/fault_tolerance.rs:
