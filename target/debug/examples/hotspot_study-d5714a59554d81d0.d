/root/repo/target/debug/examples/hotspot_study-d5714a59554d81d0.d: examples/hotspot_study.rs

/root/repo/target/debug/examples/libhotspot_study-d5714a59554d81d0.rmeta: examples/hotspot_study.rs

examples/hotspot_study.rs:
