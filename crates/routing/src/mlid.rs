//! The paper's Multiple LID (MLID) routing scheme (Section 4).
//!
//! Three cooperating pieces:
//!
//! 1. **Processing-node addressing** — every node gets `2^LMC` LIDs,
//!    `LMC = log2((m/2)^(n-1))`, `BaseLID(P(p)) = PID(P(p))·2^LMC + 1`.
//! 2. **Path selection** — for a source `s` and destination `d` with
//!    greatest common prefix length `alpha`, the source's rank `r` in
//!    `gcpg(s_0..s_alpha, alpha+1)` picks `DLID = BaseLID(d) + r`.
//! 3. **Forwarding-table assignment** — per switch `SW<w, l>` and LID
//!    `lid` owned by node `P(p)`:
//!    * *Case 1* (`p` reachable downward, i.e. `p_0..p_{l-1} = w_0..w_{l-1}`):
//!      `k = p_l + 1`                              — Equation (1)
//!    * *Case 2* (otherwise, climb):
//!      `k = (⌊(lid-1)/(m/2)^(n-1-l)⌋ mod m/2) + m/2 + 1`  — Equation (2)
//!
//! Equation (2) reads digit `n-1-l` of `lid - 1` in base `m/2`. Because the
//! low `LMC` digits of `lid - 1` are the path-selection offset `r`, and `r`'s
//! digits are exactly the source's label digits (`digit_j(r) = s_{n-1-j}`),
//! the switch reached while climbing at level `l` is *the source label with
//! digit `l` deleted* — so every upward link is used by exactly one source
//! node, which is what spreads hot-spot traffic over all the least common
//! ancestors.

use crate::{Lft, Lid, LidSpace, RoutingScheme};
use ibfat_topology::{
    gcp_len, rank_in, Gcpg, Network, NodeId, NodeLabel, PortNum, SwitchLabel, TreeParams,
};

/// The MLID scheme (stateless; all state lives in the produced artifacts).
#[derive(Debug, Clone, Copy, Default)]
pub struct MlidScheme;

impl MlidScheme {
    /// The paper's path selection: `BaseLID(dst) + rank(src)` where the
    /// rank is taken in the source's prefix group one digit deeper than the
    /// greatest common prefix with the destination.
    ///
    /// For `src == dst` (self-addressed traffic) the base LID is returned.
    pub fn select(params: TreeParams, space: &LidSpace, src: NodeId, dst: NodeId) -> Lid {
        if src == dst {
            return space.base_lid(dst);
        }
        let ls = NodeLabel::from_id(params, src);
        let ld = NodeLabel::from_id(params, dst);
        let alpha = gcp_len(&ls, &ld);
        let group = Gcpg::of(params, &ls, alpha + 1);
        let r = rank_in(params, &group, &ls);
        debug_assert!(r < space.lids_per_node());
        space.lid_with_offset(dst, r)
    }

    /// Equation (1): the down-port (IB numbering) toward the owner of a
    /// LID from a switch that has it in its subtree.
    #[inline]
    pub fn eq1_down_port(owner: &NodeLabel, level: usize) -> PortNum {
        PortNum(owner.digit(level) + 1)
    }

    /// Equation (2): the up-port (IB numbering) for a LID at a level-`l`
    /// switch that must climb.
    #[inline]
    pub fn eq2_up_port(params: TreeParams, lid: Lid, level: u32) -> PortNum {
        let half = params.half();
        let digit_index = params.n() - 1 - level;
        let digit = (u32::from(lid.0 - 1) / half.pow(digit_index)) % half;
        PortNum((digit + half + 1) as u8)
    }
}

impl RoutingScheme for MlidScheme {
    fn name(&self) -> &'static str {
        "MLID"
    }

    fn lid_space(&self, net: &Network) -> LidSpace {
        let params = net.params();
        LidSpace::new(params.num_nodes(), params.lmc())
    }

    fn build_lfts(&self, net: &Network, space: &LidSpace) -> Vec<Lft> {
        let params = net.params();
        let max_lid = space.max_lid();
        let mut lfts = Vec::with_capacity(net.num_switches());
        for sw in SwitchLabel::all(params) {
            let level = sw.level().index();
            let mut lft = Lft::new(max_lid);
            for node in NodeLabel::all(params) {
                // Case 1 applies iff the first `level` digits match.
                let below = (0..level).all(|i| sw.digit(i) == node.digit(i));
                for lid in space.lids(node.id(params)) {
                    let port = if below {
                        Self::eq1_down_port(&node, level)
                    } else {
                        Self::eq2_up_port(params, lid, level as u32)
                    };
                    lft.set(lid, port);
                }
            }
            lfts.push(lft);
        }
        lfts
    }

    fn select_dlid(&self, net: &Network, space: &LidSpace, src: NodeId, dst: NodeId) -> Lid {
        Self::select(net.params(), space, src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ibfat_topology::Level;

    fn setup() -> (TreeParams, Network, LidSpace, Vec<Lft>) {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let space = MlidScheme.lid_space(&net);
        let lfts = MlidScheme.build_lfts(&net, &space);
        (params, net, space, lfts)
    }

    #[test]
    fn addressing_matches_paper() {
        let (_, net, space, _) = setup();
        assert_eq!(space.lmc(), 2);
        assert_eq!(space.lids_per_node(), 4);
        assert_eq!(space.max_lid(), Lid(64));
        assert_eq!(net.num_nodes(), 16);
        // BaseLID(P(010)) = 9 (PID 2).
        assert_eq!(space.base_lid(NodeId(2)), Lid(9));
    }

    #[test]
    fn path_selection_assigns_distinct_offsets_within_subgroup() {
        // The paper's example: P(000), P(001), P(010), P(011) sending to
        // P(100) select the four consecutive LIDs of P(100) in rank order.
        let (params, _, space, _) = setup();
        let dst = NodeId(4); // P(100)
        let base = space.base_lid(dst).0;
        for (i, src) in [0u32, 1, 2, 3].into_iter().enumerate() {
            let dlid = MlidScheme::select(params, &space, NodeId(src), dst);
            assert_eq!(dlid, Lid(base + i as u16), "src P(0..) #{i}");
        }
    }

    #[test]
    fn paper_path_q_walkthrough() {
        // DLID 17 (base LID of P(100)) from P(000): the LFT entries along
        // path Q: SW<00,2> -> SW<00,1> -> SW<00,0> -> SW<10,1> -> SW<10,2>.
        let (params, _, _, lfts) = setup();
        let lid = Lid(17);
        let at = |w: &[u8], l: u8| {
            let id = SwitchLabel::new(params, w, Level(l)).unwrap().id(params);
            lfts[id.index()].get(lid).unwrap()
        };
        // Climbing: offset = (17-1) mod 4 = 0 -> both up hops use the first
        // up-port, IB port 3.
        assert_eq!(at(&[0, 0], 2), PortNum(3));
        assert_eq!(at(&[0, 0], 1), PortNum(3));
        // At the root SW<00,0>: descend toward p0 = 1 -> IB port 2.
        assert_eq!(at(&[0, 0], 0), PortNum(2));
        // Descending: SW<10,1> uses p1 = 0 -> port 1; SW<10,2> uses p2 = 0
        // -> port 1.
        assert_eq!(at(&[1, 0], 1), PortNum(1));
        assert_eq!(at(&[1, 0], 2), PortNum(1));
    }

    #[test]
    fn every_lft_entry_is_populated() {
        let (_, net, space, lfts) = setup();
        for (i, lft) in lfts.iter().enumerate() {
            assert_eq!(
                lft.populated(),
                space.max_lid().index(),
                "switch S{i} has unpopulated entries"
            );
        }
        assert_eq!(lfts.len(), net.num_switches());
    }

    #[test]
    fn eq2_up_ports_stay_in_up_range() {
        let (params, _, space, _) = setup();
        for lid in 1..=space.max_lid().0 {
            for level in 1..params.n() {
                let p = MlidScheme::eq2_up_port(params, Lid(lid), level);
                assert!(
                    u32::from(p.0) > params.half() && u32::from(p.0) <= params.m(),
                    "lid {lid} level {level}: port {p} out of up range"
                );
            }
        }
    }

    #[test]
    fn self_traffic_uses_base_lid() {
        let (params, _, space, _) = setup();
        assert_eq!(
            MlidScheme::select(params, &space, NodeId(5), NodeId(5)),
            space.base_lid(NodeId(5))
        );
    }
}
