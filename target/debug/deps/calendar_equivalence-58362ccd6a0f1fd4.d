/root/repo/target/debug/deps/calendar_equivalence-58362ccd6a0f1fd4.d: crates/sim/tests/calendar_equivalence.rs

/root/repo/target/debug/deps/calendar_equivalence-58362ccd6a0f1fd4: crates/sim/tests/calendar_equivalence.rs

crates/sim/tests/calendar_equivalence.rs:
