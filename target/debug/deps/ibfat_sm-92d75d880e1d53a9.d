/root/repo/target/debug/deps/ibfat_sm-92d75d880e1d53a9.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/debug/deps/libibfat_sm-92d75d880e1d53a9.rlib: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/debug/deps/libibfat_sm-92d75d880e1d53a9.rmeta: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
