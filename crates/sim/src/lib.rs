//! # ibfat-sim
//!
//! A discrete-event simulator for InfiniBand subnets, built to reproduce
//! the evaluation methodology of Lin, Chung and Huang's MLID paper
//! (IPDPS 2004). It models:
//!
//! * `m`-port crossbar switches with per-(port, VL) input/output buffers,
//! * up to 15 data virtual lanes with round-robin or weighted
//!   (IBA VLArbitration-style) arbitration,
//! * credit-based link-level flow control (IBA-style),
//! * virtual cut-through switching,
//! * forwarding purely by linear-forwarding-table lookup on the DLID
//!   (plus an optional adaptive-climbing comparator that is *not*
//!   achievable with real tables — see [`SimConfig::adaptive_up`]),
//! * per-packet path-selection policies over the destination LID window
//!   and VL-assignment policies at the source,
//! * constant-rate (or Poisson) traffic under uniform, hot-spot, and
//!   permutation patterns,
//! * a flight recorder ([`SimConfig::trace_first_packets`]), per-link
//!   utilization, out-of-order accounting, analytic bounds
//!   ([`bounds`]), and multi-seed replication ([`replicate`]).
//!
//! The full event semantics are specified in `docs/MODEL.md`.
//!
//! Timing constants default to the paper's: 20 ns wire flight, 100 ns
//! switch routing, 1 ns/byte (4X link), 256-byte packets, one-packet
//! buffers per VL. Runs are bit-for-bit deterministic per seed.
//!
//! ## Example
//!
//! ```
//! use ibfat_topology::{Network, TreeParams};
//! use ibfat_routing::{Routing, RoutingKind};
//! use ibfat_sim::{run_once, RunSpec, SimConfig, TrafficPattern};
//!
//! let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
//! let routing = Routing::build(&net, RoutingKind::Mlid);
//! let report = run_once(
//!     &net,
//!     &routing,
//!     SimConfig::paper(1),
//!     TrafficPattern::Uniform,
//!     RunSpec::new(0.2, 100_000),
//! );
//! assert!(report.delivered > 0);
//! assert!(report.avg_latency_ns() > 0.0);
//! ```

pub mod bounds;
mod config;
mod counters;
pub mod dist;
mod engine;
mod error;
mod faults;
pub mod json;
mod metrics;
mod packet;
mod par;
mod probe;
mod runner;
mod sim;
mod telemetry;
mod trace;
mod traffic;
mod vlarb;
mod workload;

pub use config::{
    InjectionProcess, PartitionKind, PathSelection, RouteBackend, SimConfig, TraceSampling,
    VlAssignment, WindowPolicy,
};
pub use counters::{
    CongestionView, FabricCounters, HotPort, NodeCounters, PortVlCounters, Sample,
    COUNTERS_SCHEMA_VERSION,
};
pub use engine::{
    CalendarKind, ChainClass, ChainQueue, EventQueue, HeapCalendar, Time, TimingWheel,
};
pub use error::SimError;
pub use faults::{
    disruption_report, DisruptionReport, FaultAction, FaultEvent, FaultPlan, FaultPolicy,
    FaultSummary, LevelLoad, PathSurvival,
};
pub use metrics::{LatencyStats, LinkUse, Percentiles, SimReport};
pub use packet::{Packet, PacketId, PacketSlab};
pub use par::ParSimulator;
pub use probe::{NoopProbe, ParProbe, Phase, PhaseProfile, Probe, NUM_PHASES};
pub use runner::{
    aggregate, par_map_indexed, replicate, run_observed, run_once, run_once_par, sweep,
    try_run_once_par, try_run_once_par_telemetry, Aggregate, RunSpec,
};
pub use sim::Simulator;
pub use telemetry::{EngineTelemetry, ShardTelemetry, WindowRecord, WINDOW_LOG_CAP};
pub use trace::{traces_to_jsonl, PacketTrace, TraceEvent};
pub use traffic::TrafficPattern;
pub use vlarb::{VlArbiter, VlArbitration};
// The message-level workload layer: the data model re-exported from
// `ibfat-workload`, plus the engine entry points on `Simulator` /
// `ParSimulator` and the runner shorthands in `runner`.
pub use ibfat_workload::{
    generators, trace as workload_trace, ClosedLoopKind, GroupReport, Message, MessageTiming,
    MsgId, MsgLatency, Workload, WorkloadReport,
};
pub use runner::{run_workload, run_workload_par, try_run_workload_par};
