//! Static channel-load analysis.
//!
//! For a deterministic routing, the load of a directed link under a given
//! traffic matrix is the number of (source, destination) flows routed
//! across it — a simulator-free predictor of contention. A scheme's
//! worst-case link load under all-to-all traffic bounds its saturation
//! throughput from above: a link crossed by `L` of the `N-1` flows each
//! node sends can deliver at most `1/L`th of a link per flow.
//!
//! Loads live in a dense flat `Vec<u32>` indexed by the
//! [`PortSlots`] `(device, port)` stride — no per-hop hash probes, and
//! memory stays O(links) no matter how many flows stream through. The
//! all-to-all analysis shards sources across the thread pool and merges
//! the per-shard vectors by element-wise addition; the N² pair set is
//! never materialized.

use crate::{RouteOracle, Routing, RoutingError, RoutingKind};
use ibfat_topology::{par_map_indexed, DeviceRef, Network, NodeId, PortNum, PortSlots, TreeParams};

/// Load statistics over the directed links of a subnet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLoads {
    params: TreeParams,
    slots: PortSlots,
    /// Flows crossing each directed link, indexed by the transmitting
    /// `(device, port)` slot.
    loads: Vec<u32>,
    /// Maximum over the *upward* inter-switch links.
    pub max_up: u32,
    /// Maximum over the *downward* inter-switch links.
    pub max_down: u32,
    /// Total links carrying at least one flow.
    pub used_links: usize,
}

impl ChannelLoads {
    /// Wrap a fully accumulated load vector, deriving the roll-up stats.
    fn finalize(params: TreeParams, slots: PortSlots, loads: Vec<u32>) -> ChannelLoads {
        debug_assert_eq!(loads.len(), slots.len());
        let half = params.half();
        let mut max_up = 0;
        let mut max_down = 0;
        let mut used_links = 0;
        for (slot, &load) in loads.iter().enumerate() {
            if load == 0 {
                continue;
            }
            used_links += 1;
            if let (DeviceRef::Switch(sw), port) = slots.decode(slot) {
                let is_up = params.switch_level_of(sw.0) > 0 && u32::from(port.0) > half;
                if is_up {
                    max_up = max_up.max(load);
                } else {
                    max_down = max_down.max(load);
                }
            }
        }
        ChannelLoads {
            params,
            slots,
            loads,
            max_up,
            max_down,
            used_links,
        }
    }

    /// The analyzed fabric's parameters.
    #[inline]
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// The highest load over every link (including edge links).
    pub fn max(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Flows crossing the directed link transmitted by `(device, port)`;
    /// 0 for unused (or nonexistent) links.
    pub fn load_of(&self, device: DeviceRef, port: PortNum) -> u32 {
        match device {
            DeviceRef::Switch(sw)
                if sw.0 < self.params.num_switches() && u32::from(port.0) <= self.params.m() =>
            {
                self.loads[self.slots.switch_slot(sw, port)]
            }
            DeviceRef::Node(node) if node.0 < self.params.num_nodes() && port == PortNum(1) => {
                self.loads[self.slots.node_slot(node)]
            }
            _ => 0,
        }
    }

    /// Iterate the used links as `(device, port, load)`, in slot order
    /// (switches by id then port, then nodes).
    pub fn iter(&self) -> impl Iterator<Item = (DeviceRef, PortNum, u32)> + '_ {
        self.loads
            .iter()
            .enumerate()
            .filter(|&(_, &load)| load != 0)
            .map(|(slot, &load)| {
                let (device, port) = self.slots.decode(slot);
                (device, port, load)
            })
    }

    /// The `k` most loaded directed links, heaviest first. Ties break
    /// deterministically: switches before nodes, then by id, then port —
    /// so equal analyses print identically across runs. (That order is
    /// exactly the slot order, so a stable sort by load suffices.)
    pub fn hottest(&self, k: usize) -> Vec<(DeviceRef, PortNum, u32)> {
        let mut all: Vec<_> = self.iter().collect();
        all.sort_by_key(|&(_, _, load)| std::cmp::Reverse(load));
        all.truncate(k);
        all
    }
}

/// Accumulate one flow's directed links into a load vector.
#[inline]
fn add_route(
    loads: &mut [u32],
    slots: &PortSlots,
    net: &Network,
    routing: &Routing,
    src: NodeId,
    dst: NodeId,
) -> Result<(), RoutingError> {
    let dlid = routing.select_dlid(src, dst);
    let route = routing.trace(net, src, dlid)?;
    for (device, port) in route.directed_links() {
        let slot = slots
            .slot(device, port)
            .expect("routes transmit only on slotted ports");
        loads[slot] += 1;
    }
    Ok(())
}

/// Compute channel loads for the all-to-all traffic matrix under the
/// routing's own path selection (every ordered pair sends one flow).
///
/// Sources are streamed in parallel shards — each shard walks its own
/// rows of the (never materialized) pair matrix into a private load
/// vector, and the shards merge by addition. Memory is O(links · threads).
pub fn all_to_all_loads(net: &Network, routing: &Routing) -> Result<ChannelLoads, RoutingError> {
    let params = net.params();
    let slots = PortSlots::of(params);
    let nodes = params.num_nodes();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    // A few shards per thread so an unlucky chunk can't straggle.
    let chunk = (nodes as usize).div_ceil(4 * threads).max(1);
    let sources: Vec<u32> = (0..nodes).collect();
    let shards: Vec<&[u32]> = sources.chunks(chunk).collect();
    let partials = par_map_indexed(&shards, |_, shard| -> Result<Vec<u32>, RoutingError> {
        let mut loads = vec![0u32; slots.len()];
        for &src in *shard {
            for dst in 0..nodes {
                if dst != src {
                    add_route(&mut loads, &slots, net, routing, NodeId(src), NodeId(dst))?;
                }
            }
        }
        Ok(loads)
    });
    let mut loads = vec![0u32; slots.len()];
    for partial in partials {
        for (total, shard) in loads.iter_mut().zip(partial?) {
            *total += shard;
        }
    }
    Ok(ChannelLoads::finalize(params, slots, loads))
}

/// Compute channel loads for an explicit flow matrix.
pub fn loads_for_matrix(
    net: &Network,
    routing: &Routing,
    flows: &[(NodeId, NodeId)],
) -> Result<ChannelLoads, RoutingError> {
    let params = net.params();
    let slots = PortSlots::of(params);
    let mut loads = vec![0u32; slots.len()];
    for &(src, dst) in flows {
        add_route(&mut loads, &slots, net, routing, src, dst)?;
    }
    Ok(ChannelLoads::finalize(params, slots, loads))
}

/// All-to-all channel loads from the closed-form [`RouteOracle`] alone —
/// no network graph, no tables, no trace allocations. `None` for kinds
/// without a closed form (up*/down*).
///
/// This is what makes FT(32, 3) (67M flows, 2 GB of would-be tables)
/// analyzable: each parallel shard walks its sources' flows through pure
/// arithmetic into a private load vector.
pub fn all_to_all_loads_oracle(params: TreeParams, kind: RoutingKind) -> Option<ChannelLoads> {
    let oracle = RouteOracle::for_kind(params, kind)?;
    let slots = PortSlots::of(params);
    let nodes = params.num_nodes();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = (nodes as usize).div_ceil(4 * threads).max(1);
    let sources: Vec<u32> = (0..nodes).collect();
    let shards: Vec<&[u32]> = sources.chunks(chunk).collect();
    let partials = par_map_indexed(&shards, |_, shard| {
        let mut loads = vec![0u32; slots.len()];
        for &src in *shard {
            for dst in 0..nodes {
                if dst == src {
                    continue;
                }
                let dlid = oracle.select_dlid(NodeId(src), NodeId(dst));
                oracle
                    .walk(NodeId(src), dlid, |device, port| {
                        let slot = slots
                            .slot(device, port)
                            .expect("walks transmit only on slotted ports");
                        loads[slot] += 1;
                    })
                    .expect("oracle walk cannot fail on a pristine fabric");
            }
        }
        loads
    });
    let mut loads = vec![0u32; slots.len()];
    for partial in partials {
        for (total, shard) in loads.iter_mut().zip(partial) {
            *total += shard;
        }
    }
    Some(ChannelLoads::finalize(params, slots, loads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingKind;
    use ibfat_topology::{SwitchLabel, TreeParams};
    use std::collections::HashMap;

    fn loads(m: u32, n: u32, kind: RoutingKind) -> ChannelLoads {
        let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
        let routing = Routing::build(&net, kind);
        all_to_all_loads(&net, &routing).unwrap()
    }

    #[test]
    fn all_to_all_upward_load_is_balanced_for_both_schemes() {
        // Under the *uniform* all-to-all matrix both schemes balance the
        // upward links perfectly (MLID partitions them by source, SLID by
        // destination digit): every leaf up-link of FT(4,3) carries
        // exactly N-2 flows (one source's 15 flows minus the leaf-sibling
        // one for MLID; 7+7 destination-split flows for SLID). The
        // schemes only separate on *skewed* matrices — see
        // `all_to_one_matrix_separates_the_schemes`.
        let n = 16u32;
        for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
            let l = loads(4, 3, kind);
            assert_eq!(l.max_up, n - 2, "{kind}");
        }
    }

    #[test]
    fn all_to_one_matrix_separates_the_schemes() {
        // Every node sends one flow to node 0 — the hot-spot matrix. MLID
        // bounds the upward load at 1 everywhere; SLID concentrates the
        // whole column onto shared up-links.
        for (m, n) in [(4, 3), (8, 2), (16, 2)] {
            let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
            let flows: Vec<_> = (1..net.num_nodes() as u32)
                .map(|s| (NodeId(s), NodeId(0)))
                .collect();
            let mlid = Routing::build(&net, RoutingKind::Mlid);
            let slid = Routing::build(&net, RoutingKind::Slid);
            let lm = loads_for_matrix(&net, &mlid, &flows).unwrap();
            let ls = loads_for_matrix(&net, &slid, &flows).unwrap();
            assert_eq!(lm.max_up, 1, "IBFT({m},{n}): MLID upward exclusivity");
            assert!(
                ls.max_up as u64 >= (net.num_nodes() as u64 - 1) / u64::from(m),
                "IBFT({m},{n}): SLID should concentrate ({} flows on one up-link)",
                ls.max_up
            );
        }
    }

    #[test]
    fn every_edge_link_carries_exactly_n_minus_one_flows() {
        // All-to-all: every node sends N-1 flows over its injection link
        // and receives N-1 over its delivery link.
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let l = all_to_all_loads(&net, &routing).unwrap();
        let nodes = net.num_nodes() as u32;
        for node in 0..nodes {
            let injection = l.load_of(DeviceRef::Node(NodeId(node)), PortNum(1));
            assert_eq!(injection, nodes - 1);
        }
        // Delivery links: the leaf switch port toward each node.
        let mut delivered = 0u32;
        for (device, port, load) in l.iter() {
            if let DeviceRef::Switch(sw) = device {
                if let Some(peer) = net.peer_of(device, port) {
                    if matches!(peer.device, DeviceRef::Node(_)) {
                        assert_eq!(load, nodes - 1, "delivery link of {sw}");
                        delivered += 1;
                    }
                }
            }
        }
        assert_eq!(delivered, nodes);
    }

    #[test]
    fn load_of_and_hottest_agree_with_the_link_iterator() {
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Slid);
        let flows: Vec<_> = (1..net.num_nodes() as u32)
            .map(|s| (NodeId(s), NodeId(0)))
            .collect();
        let l = loads_for_matrix(&net, &routing, &flows).unwrap();
        // load_of mirrors the iterator and returns 0 off it.
        for (device, port, load) in l.iter() {
            assert_eq!(l.load_of(device, port), load);
        }
        assert_eq!(l.load_of(DeviceRef::Node(NodeId(0)), PortNum(1)), 0);
        assert_eq!(l.iter().count(), l.used_links);
        // hottest(k) is sorted, truncated, consistent with max(), and
        // deterministic (a second call yields the identical ranking).
        let top = l.hottest(5);
        assert_eq!(top.len(), 5.min(l.used_links));
        assert_eq!(top[0].2, l.max());
        assert!(top.windows(2).all(|w| w[0].2 >= w[1].2));
        assert_eq!(top, l.hottest(5));
        assert_eq!(l.hottest(usize::MAX).len(), l.used_links);
    }

    #[test]
    fn custom_matrix_loads() {
        // The paper's Figure 11 scenario: gcpg(0,1) -> P(100). Four flows,
        // each upward link used at most once under MLID.
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let flows: Vec<_> = (0..4).map(|s| (NodeId(s), NodeId(4))).collect();
        let l = loads_for_matrix(&net, &routing, &flows).unwrap();
        assert_eq!(l.max_up, 1, "paper's routes Q,R,S,T are upward-disjoint");
        // Under SLID the same four flows pile onto shared up-links.
        let slid = Routing::build(&net, RoutingKind::Slid);
        let ls = loads_for_matrix(&net, &slid, &flows).unwrap();
        assert!(ls.max_up >= 2);
    }

    #[test]
    fn dense_loads_match_a_hashmap_reference() {
        // The dense flat-vector analysis must agree, link for link and
        // stat for stat, with the straightforward HashMap accumulation it
        // replaced (reconstructed here as an in-test reference).
        for (m, n) in [(4, 2), (4, 3), (8, 3)] {
            for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
                let params = TreeParams::new(m, n).unwrap();
                let net = Network::mport_ntree(params);
                let routing = Routing::build(&net, kind);
                let dense = all_to_all_loads(&net, &routing).unwrap();

                let mut per_link: HashMap<(DeviceRef, PortNum), u32> = HashMap::new();
                for src in 0..params.num_nodes() {
                    for dst in 0..params.num_nodes() {
                        if src == dst {
                            continue;
                        }
                        let dlid = routing.select_dlid(NodeId(src), NodeId(dst));
                        let route = routing.trace(&net, NodeId(src), dlid).unwrap();
                        for link in route.directed_links() {
                            *per_link.entry(link).or_insert(0) += 1;
                        }
                    }
                }
                let (mut max_up, mut max_down) = (0, 0);
                for (&(device, port), &load) in &per_link {
                    if let DeviceRef::Switch(sw) = device {
                        let level = SwitchLabel::from_id(params, sw).level();
                        if level.0 > 0 && u32::from(port.0) > params.half() {
                            max_up = max_up.max(load);
                        } else {
                            max_down = max_down.max(load);
                        }
                    }
                }
                let tag = format!("FT({m},{n}) {kind:?}");
                assert_eq!(dense.used_links, per_link.len(), "{tag}");
                assert_eq!(dense.max_up, max_up, "{tag}");
                assert_eq!(dense.max_down, max_down, "{tag}");
                assert_eq!(
                    dense.max(),
                    per_link.values().copied().max().unwrap_or(0),
                    "{tag}"
                );
                for (device, port, load) in dense.iter() {
                    assert_eq!(per_link.get(&(device, port)), Some(&load), "{tag}");
                }
            }
        }
    }

    #[test]
    fn oracle_loads_match_table_walked_loads() {
        for (m, n) in [(4, 3), (8, 2)] {
            for kind in [RoutingKind::Mlid, RoutingKind::Slid] {
                let params = TreeParams::new(m, n).unwrap();
                let net = Network::mport_ntree(params);
                let routing = Routing::build(&net, kind);
                let table = all_to_all_loads(&net, &routing).unwrap();
                let oracle = all_to_all_loads_oracle(params, kind).unwrap();
                assert_eq!(oracle, table, "FT({m},{n}) {kind:?}");
            }
        }
        assert!(
            all_to_all_loads_oracle(TreeParams::new(4, 2).unwrap(), RoutingKind::UpDown).is_none()
        );
    }
}
