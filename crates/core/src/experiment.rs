use crate::Fabric;
use ibfat_sim::{
    run_once, run_once_par, sweep, EngineTelemetry, InjectionProcess, Probe, RunSpec, SimConfig,
    SimReport, TrafficPattern, Workload, WorkloadReport,
};

/// Fluent configuration of a simulation over a [`Fabric`].
///
/// Defaults are the paper's operating point: 256-byte packets, 1 VL,
/// uniform traffic, 30% offered load, 500 µs of simulated time with a 20%
/// warm-up.
#[derive(Debug, Clone)]
pub struct ExperimentBuilder<'a> {
    fabric: &'a Fabric,
    cfg: SimConfig,
    pattern: TrafficPattern,
    offered_load: f64,
    sim_time_ns: u64,
    warmup_ns: Option<u64>,
    threads: usize,
}

impl<'a> ExperimentBuilder<'a> {
    pub(crate) fn new(fabric: &'a Fabric) -> Self {
        ExperimentBuilder {
            fabric,
            cfg: SimConfig::default(),
            pattern: TrafficPattern::Uniform,
            offered_load: 0.3,
            sim_time_ns: 500_000,
            warmup_ns: None,
            threads: 1,
        }
    }

    /// Simulation worker threads (default 1 = the sequential engine).
    /// `0` auto-detects the number of available cores. Any value yields
    /// bit-identical reports: the parallel engine's determinism contract
    /// (see [`ibfat_sim::ParSimulator`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        self
    }

    /// Shard partitioner for the parallel engine (default: fat-tree-aware;
    /// see [`ibfat_sim::PartitionKind`]). Bit-identical reports across
    /// choices.
    pub fn partition(mut self, kind: ibfat_sim::PartitionKind) -> Self {
        self.cfg.partition = kind;
        self
    }

    /// Window-sizing policy for the parallel engine (default: adaptive;
    /// see [`ibfat_sim::WindowPolicy`]). Bit-identical reports across
    /// choices.
    pub fn window_policy(mut self, policy: ibfat_sim::WindowPolicy) -> Self {
        self.cfg.window_policy = policy;
        self
    }

    /// Forwarding-state backend for the packet engine (default: table —
    /// flat LFT lookups, exactly what real switch hardware does). The
    /// oracle backend answers hops from the closed-form route formula
    /// instead, never materializing per-switch tables; reports are
    /// bit-identical across backends, the oracle just trades a formula
    /// evaluation for the table's memory footprint. Only the SLID/MLID
    /// schemes on intact fabrics have an oracle (see
    /// [`ibfat_sim::RouteBackend`]).
    pub fn route_backend(mut self, backend: ibfat_sim::RouteBackend) -> Self {
        self.cfg.route_backend = backend;
        self
    }

    /// Number of virtual lanes (paper: 1, 2 or 4).
    pub fn virtual_lanes(mut self, vls: u8) -> Self {
        self.cfg.num_vls = vls;
        self
    }

    /// Packet size in bytes (paper: 256).
    pub fn packet_bytes(mut self, bytes: u32) -> Self {
        self.cfg.packet_bytes = bytes;
        self
    }

    /// Buffer depth per (port, VL) in packets (paper: 1).
    pub fn buffer_packets(mut self, packets: u8) -> Self {
        self.cfg.buffer_packets = packets;
        self
    }

    /// Injection process (default deterministic, as in the paper).
    pub fn injection(mut self, process: InjectionProcess) -> Self {
        self.cfg.injection = process;
        self
    }

    /// Path-selection policy over the destination's LID window (default:
    /// the paper's rank-based selection).
    pub fn path_selection(mut self, policy: ibfat_sim::PathSelection) -> Self {
        self.cfg.path_selection = policy;
        self
    }

    /// VL assignment policy (default: uniform random per packet).
    pub fn vl_assignment(mut self, policy: ibfat_sim::VlAssignment) -> Self {
        self.cfg.vl_assignment = policy;
        self
    }

    /// Traffic pattern.
    pub fn traffic(mut self, pattern: TrafficPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Normalized offered load per node in `(0, 1]`.
    pub fn offered_load(mut self, load: f64) -> Self {
        self.offered_load = load;
        self
    }

    /// Total simulated time in ns.
    pub fn duration_ns(mut self, ns: u64) -> Self {
        self.sim_time_ns = ns;
        self
    }

    /// Warm-up excluded from measurement (default: 20% of the duration).
    pub fn warmup_ns(mut self, ns: u64) -> Self {
        self.warmup_ns = Some(ns);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Override the full simulator configuration.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Schedule deterministic mid-run fabric failures (see
    /// [`ibfat_sim::FaultPlan`]): scheduled link/switch kills and
    /// revivals with modeled SM detection + patch-level reprogramming.
    /// The empty plan (the default) leaves the engine on its pre-fault
    /// code paths. Reports stay bit-identical at any thread count.
    pub fn faults(mut self, plan: ibfat_sim::FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    fn spec(&self, load: f64) -> RunSpec {
        RunSpec {
            offered_load: load,
            sim_time_ns: self.sim_time_ns,
            warmup_ns: self.warmup_ns.unwrap_or(self.sim_time_ns / 5),
        }
    }

    /// Run the configured operating point.
    pub fn run(self) -> SimReport {
        let spec = self.spec(self.offered_load);
        if self.threads > 1 {
            return run_once_par(
                self.fabric.network(),
                self.fabric.routing(),
                self.cfg,
                self.pattern,
                spec,
                self.threads,
            );
        }
        run_once(
            self.fabric.network(),
            self.fabric.routing(),
            self.cfg,
            self.pattern,
            spec,
        )
    }

    /// Run the configured operating point with engine self-telemetry:
    /// the report (bit-identical to [`run`](ExperimentBuilder::run))
    /// plus per-shard window/barrier/mailbox statistics from the
    /// parallel engine (see [`ibfat_sim::EngineTelemetry`]). With one
    /// thread the sequential engine runs and the telemetry is the
    /// `threads: 1` marker.
    pub fn run_telemetry(self) -> (SimReport, EngineTelemetry) {
        let spec = self.spec(self.offered_load);
        ibfat_sim::try_run_once_par_telemetry(
            self.fabric.network(),
            self.fabric.routing(),
            self.cfg,
            self.pattern,
            spec,
            self.threads,
        )
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run the configured operating point observed by `probe` — e.g. an
    /// [`ibfat_sim::FabricCounters`] for per-port counters and sampled
    /// time-series, an [`ibfat_sim::PhaseProfile`] for self-profiling, or
    /// a tuple of both. Returns the report together with the probe.
    pub fn run_observed<P: Probe>(self, probe: P) -> (SimReport, P) {
        let spec = self.spec(self.offered_load);
        ibfat_sim::run_observed(
            self.fabric.network(),
            self.fabric.routing(),
            self.cfg,
            self.pattern,
            spec,
            probe,
        )
    }

    /// Run a load sweep, returning reports in the order of `loads`. With
    /// one thread the points themselves run in parallel (independent
    /// simulations); with more, each point runs on the parallel engine
    /// in turn, so memory stays bounded by one fabric. Reports are
    /// identical either way.
    pub fn run_sweep(self, loads: &[f64]) -> Vec<SimReport> {
        if self.threads > 1 {
            return loads
                .iter()
                .map(|&load| {
                    run_once_par(
                        self.fabric.network(),
                        self.fabric.routing(),
                        self.cfg.clone(),
                        self.pattern.clone(),
                        RunSpec::new(load, self.sim_time_ns),
                        self.threads,
                    )
                })
                .collect();
        }
        sweep(
            self.fabric.network(),
            self.fabric.routing(),
            self.cfg,
            &self.pattern,
            loads,
            self.sim_time_ns,
        )
    }

    /// Drive a message-level workload (a collective, closed-loop, or
    /// replayed trace — see [`ibfat_sim::generators`] and
    /// [`ibfat_sim::workload_trace`]) to completion instead of sampling
    /// a traffic pattern for a fixed duration. Pattern, load, duration
    /// and warm-up settings are ignored; `threads` is honored (reports
    /// are bit-identical at any thread count).
    pub fn run_workload(self, wl: &Workload) -> WorkloadReport {
        if self.threads > 1 {
            return ibfat_sim::run_workload_par(
                self.fabric.network(),
                self.fabric.routing(),
                self.cfg,
                wl,
                self.threads,
            );
        }
        ibfat_sim::run_workload(self.fabric.network(), self.fabric.routing(), self.cfg, wl)
    }

    /// Drive a workload to completion observed by `probe` — e.g. an
    /// [`ibfat_sim::PhaseProfile`] for engine self-profiling. Honors
    /// `threads` like [`run_workload`](ExperimentBuilder::run_workload):
    /// the probe forks one child per shard and absorbs them at the end,
    /// and the report is bit-identical at any thread count.
    pub fn run_workload_observed<P: ibfat_sim::ParProbe>(
        self,
        wl: &Workload,
        probe: P,
    ) -> (WorkloadReport, P) {
        ibfat_sim::ParSimulator::for_workload_observed(
            self.fabric.network(),
            self.fabric.routing(),
            self.cfg,
            self.threads,
            probe,
        )
        .run_workload_observed(wl)
        .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run the configured operating point under several seeds and return
    /// each replica's report (use [`ibfat_sim::aggregate`] to summarize).
    pub fn run_replicated(self, seeds: &[u64]) -> Vec<SimReport> {
        let spec = self.spec(self.offered_load);
        ibfat_sim::replicate(
            self.fabric.network(),
            self.fabric.routing(),
            self.cfg,
            &self.pattern,
            spec,
            seeds,
        )
    }

    /// Collect per-link utilization into the report.
    pub fn collect_link_stats(mut self, on: bool) -> Self {
        self.cfg.collect_link_stats = on;
        self
    }

    /// Record full event timelines for the first `n` generated packets.
    pub fn trace_first_packets(mut self, n: u32) -> Self {
        self.cfg.trace_first_packets = n;
        self
    }

    /// Which flows fill the flight-recorder slots (default: the first
    /// packets generated, whatever their flow; see
    /// [`ibfat_sim::TraceSampling`] for 1-in-N flow sampling and
    /// explicit (src, dst) filters). Slot assignment is a pure flow
    /// function, so traces stay byte-identical at any thread count.
    pub fn trace_sampling(mut self, sampling: ibfat_sim::TraceSampling) -> Self {
        self.cfg.trace_sampling = sampling;
        self
    }

    /// Adaptive upward routing (extension; see
    /// [`ibfat_sim::SimConfig::adaptive_up`]).
    pub fn adaptive_up(mut self, on: bool) -> Self {
        self.cfg.adaptive_up = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingKind;

    #[test]
    fn experiment_defaults_run() {
        let fabric = Fabric::builder(4, 2).build().unwrap();
        let report = fabric.experiment().duration_ns(100_000).run();
        assert!(report.delivered > 0);
        assert_eq!(report.warmup_ns, 20_000);
    }

    #[test]
    fn builder_knobs_are_applied() {
        let fabric = Fabric::builder(4, 2)
            .routing(RoutingKind::Slid)
            .build()
            .unwrap();
        let report = fabric
            .experiment()
            .virtual_lanes(4)
            .packet_bytes(128)
            .offered_load(0.5)
            .duration_ns(80_000)
            .warmup_ns(10_000)
            .seed(99)
            .run();
        assert_eq!(report.warmup_ns, 10_000);
        assert_eq!(report.sim_time_ns, 80_000);
        assert!((report.offered_load - 0.5).abs() < 1e-12);
        // 128-byte packets at load 0.5 -> offered 0.5 bytes/ns/node.
        assert!((report.offered_bytes_per_ns_per_node - 0.5).abs() < 1e-9);
    }

    #[test]
    fn workload_through_experiment_api() {
        let fabric = Fabric::builder(4, 2).build().unwrap();
        let wl = ibfat_sim::generators::allreduce_ring(fabric.num_nodes(), 2048);
        let seq = fabric.experiment().run_workload(&wl);
        assert_eq!(seq.messages as usize, wl.messages.len());
        assert!(seq.makespan_ns > 0);
        let par = fabric.experiment().threads(3).run_workload(&wl);
        assert_eq!(par, seq, "thread count must not change the report");
    }

    // The only host-dependent report fields; everything else must match.
    fn normalized(mut r: SimReport) -> SimReport {
        r.events_per_sec = 0.0;
        r.packets_per_sec = 0.0;
        r
    }

    #[test]
    fn threads_zero_auto_detects_cores() {
        let fabric = Fabric::builder(4, 2).build().unwrap();
        let auto = fabric.experiment().threads(0);
        assert!(
            auto.threads >= 1,
            "auto-detect must resolve to a real count"
        );
        let report = auto.duration_ns(60_000).run();
        let seq = fabric.experiment().duration_ns(60_000).run();
        assert_eq!(
            normalized(report),
            normalized(seq),
            "auto thread count must not change the report"
        );
    }

    #[test]
    fn partition_and_window_knobs_are_report_invariant() {
        use ibfat_sim::{PartitionKind, WindowPolicy};
        let fabric = Fabric::builder(4, 2).build().unwrap();
        let base = normalized(fabric.experiment().duration_ns(60_000).threads(2).run());
        for kind in [PartitionKind::FatTree, PartitionKind::Block] {
            for policy in [WindowPolicy::Fixed, WindowPolicy::Adaptive] {
                let r = fabric
                    .experiment()
                    .duration_ns(60_000)
                    .threads(2)
                    .partition(kind)
                    .window_policy(policy)
                    .run();
                assert_eq!(
                    normalized(r),
                    base,
                    "{kind:?}/{policy:?} changed the report"
                );
            }
        }
    }

    #[test]
    fn sweep_through_experiment_api() {
        let fabric = Fabric::builder(4, 2).build().unwrap();
        let reports = fabric
            .experiment()
            .duration_ns(60_000)
            .run_sweep(&[0.2, 0.6]);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].avg_latency_ns() <= reports[1].avg_latency_ns());
    }
}
