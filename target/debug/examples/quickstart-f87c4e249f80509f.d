/root/repo/target/debug/examples/quickstart-f87c4e249f80509f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f87c4e249f80509f: examples/quickstart.rs

examples/quickstart.rs:
