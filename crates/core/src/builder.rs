use ibfat_routing::{Route, Routing, RoutingError, RoutingKind};
use ibfat_topology::{Network, NodeId, TopologyError, TreeParams};
use std::fmt;

/// Errors surfaced by the high-level API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Invalid tree parameters.
    Topology(TopologyError),
    /// A routing or verification failure.
    Routing(RoutingError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Topology(e) => write!(f, "topology: {e}"),
            FabricError::Routing(e) => write!(f, "routing: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<TopologyError> for FabricError {
    fn from(e: TopologyError) -> Self {
        FabricError::Topology(e)
    }
}

impl From<RoutingError> for FabricError {
    fn from(e: RoutingError) -> Self {
        FabricError::Routing(e)
    }
}

/// Builder for a [`Fabric`].
#[derive(Debug, Clone)]
pub struct FabricBuilder {
    m: u32,
    n: u32,
    kind: RoutingKind,
}

impl FabricBuilder {
    /// Choose the routing scheme (default: MLID, the paper's contribution).
    pub fn routing(mut self, kind: RoutingKind) -> Self {
        self.kind = kind;
        self
    }

    /// Construct the subnet, run the subnet-manager role (LID assignment +
    /// forwarding tables), and validate the wiring.
    pub fn build(self) -> Result<Fabric, FabricError> {
        let params = TreeParams::new(self.m, self.n)?;
        let net = Network::mport_ntree(params);
        net.validate()?;
        let routing = Routing::build(&net, self.kind);
        Ok(Fabric {
            params,
            net,
            routing,
        })
    }
}

/// A fully initialized InfiniBand fat-tree fabric: the cabled subnet plus
/// the routing state a subnet manager would have programmed.
#[derive(Debug, Clone)]
pub struct Fabric {
    params: TreeParams,
    net: Network,
    routing: Routing,
}

impl Fabric {
    /// Start building an `IBFT(m, n)` fabric.
    pub fn builder(m: u32, n: u32) -> FabricBuilder {
        FabricBuilder {
            m,
            n,
            kind: RoutingKind::Mlid,
        }
    }

    /// The tree parameters.
    pub fn params(&self) -> TreeParams {
        self.params
    }

    /// The cabled subnet.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The programmed routing (LID space + forwarding tables).
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Number of processing nodes.
    pub fn num_nodes(&self) -> u32 {
        self.params.num_nodes()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> u32 {
        self.params.num_switches()
    }

    /// The route a packet from `src` to `dst` takes under this fabric's
    /// path selection.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Result<Route, FabricError> {
        let dlid = self.routing.select_dlid(src, dst);
        Ok(self.routing.trace(&self.net, src, dlid)?)
    }

    /// The route for an explicit destination LID (exercises multipathing
    /// directly).
    pub fn route_to_lid(
        &self,
        src: NodeId,
        dlid: ibfat_routing::Lid,
    ) -> Result<Route, FabricError> {
        Ok(self.routing.trace(&self.net, src, dlid)?)
    }

    /// Run the full verification suite: every LID delivers from every
    /// source, selected routes are minimal, and the channel dependency
    /// graph is acyclic (deadlock freedom). Expensive on large fabrics.
    pub fn verify(&self) -> Result<(), FabricError> {
        ibfat_routing::verify_all_lids_deliver(&self.net, &self.routing)?;
        if matches!(self.routing.kind(), RoutingKind::Mlid | RoutingKind::Slid) {
            ibfat_routing::verify_minimality(&self.net, &self.routing)?;
        }
        ibfat_routing::verify_deadlock_free(&self.net, &self.routing)?;
        Ok(())
    }

    /// Static channel loads under all-to-all traffic: every ordered node
    /// pair sends one flow along this fabric's selected path. Streams the
    /// (never materialized) pair matrix through parallel source shards
    /// into a dense per-link vector — memory stays O(links).
    pub fn channel_loads(&self) -> Result<ibfat_routing::ChannelLoads, FabricError> {
        Ok(ibfat_routing::all_to_all_loads(&self.net, &self.routing)?)
    }

    /// Static channel loads for an explicit flow matrix.
    pub fn channel_loads_for(
        &self,
        flows: &[(NodeId, NodeId)],
    ) -> Result<ibfat_routing::ChannelLoads, FabricError> {
        Ok(ibfat_routing::loads_for_matrix(
            &self.net,
            &self.routing,
            flows,
        )?)
    }

    /// Start configuring a simulation of this fabric.
    pub fn experiment(&self) -> crate::ExperimentBuilder<'_> {
        crate::ExperimentBuilder::new(self)
    }

    /// A degraded copy of this fabric: the given cables (indices into
    /// `network().links()`) are failed and the forwarding tables are
    /// reprogrammed — fault-repaired MLID/SLID tables, or a fresh
    /// up*/down* computation, which handles degraded graphs natively.
    ///
    /// Destinations that become unreachable under up*-then-down*
    /// semantics lose their LFT entries; routes to them report
    /// `NoLftEntry` and simulated packets toward them are not generated
    /// by the built-in patterns unless the pattern targets them.
    pub fn with_failed_links(&self, link_indices: &[usize]) -> Fabric {
        self.with_failed(link_indices, &[])
    }

    /// A degraded copy with failed cables *and* powered-off switches in
    /// one batch: a dead switch fails every cable incident to it, the
    /// network is cloned once, and the tables are reprogrammed once for
    /// the combined damage — not per component.
    pub fn with_failed(&self, link_indices: &[usize], switches: &[u32]) -> Fabric {
        use ibfat_topology::DeviceRef;
        let mut dead: Vec<usize> = link_indices.to_vec();
        if !switches.is_empty() {
            for (i, link) in self.net.links().iter().enumerate() {
                if [link.a, link.b]
                    .iter()
                    .any(|p| matches!(p.device, DeviceRef::Switch(s) if switches.contains(&s.0)))
                {
                    dead.push(i);
                }
            }
        }
        dead.sort_unstable_by(|a, b| b.cmp(a)); // high to low keeps indices valid
        dead.dedup();
        let mut net = self.net.clone();
        for idx in dead {
            net.remove_link(idx);
        }
        let routing = match self.routing.kind() {
            RoutingKind::UpDown => Routing::build(&net, RoutingKind::UpDown),
            kind => ibfat_routing::build_fault_tolerant(&net, kind),
        };
        Fabric {
            params: self.params,
            net,
            routing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_verify_small_fabrics() {
        for kind in [RoutingKind::Mlid, RoutingKind::Slid, RoutingKind::UpDown] {
            let fabric = Fabric::builder(4, 2).routing(kind).build().unwrap();
            fabric.verify().unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }

    #[test]
    fn invalid_parameters_are_reported() {
        assert!(matches!(
            Fabric::builder(6, 2).build(),
            Err(FabricError::Topology(_))
        ));
    }

    #[test]
    fn route_endpoints_match_request() {
        let fabric = Fabric::builder(8, 2).build().unwrap();
        let route = fabric.route(NodeId(3), NodeId(17)).unwrap();
        assert_eq!(route.src, NodeId(3));
        assert_eq!(route.dst, NodeId(17));
    }

    #[test]
    fn channel_loads_reflect_the_scheme_contrast() {
        // The hot-spot matrix separates the schemes through the high-level
        // API exactly as it does through the routing crate directly.
        let flows: Vec<_> = (1..16).map(|s| (NodeId(s), NodeId(0))).collect();
        let mlid = Fabric::builder(4, 3).build().unwrap();
        let slid = Fabric::builder(4, 3)
            .routing(RoutingKind::Slid)
            .build()
            .unwrap();
        let lm = mlid.channel_loads_for(&flows).unwrap();
        let ls = slid.channel_loads_for(&flows).unwrap();
        assert_eq!(lm.max_up, 1);
        assert!(ls.max_up > lm.max_up);
        // All-to-all through the convenience method agrees with the
        // routing-crate entry point.
        assert_eq!(
            mlid.channel_loads().unwrap(),
            ibfat_routing::all_to_all_loads(mlid.network(), mlid.routing()).unwrap()
        );
    }

    #[test]
    fn with_failed_batches_links_and_switches() {
        use ibfat_topology::DeviceRef;
        let fabric = Fabric::builder(4, 3).build().unwrap();
        let net = fabric.network();
        let incident: Vec<usize> = net
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| {
                [l.a, l.b]
                    .iter()
                    .any(|p| matches!(p.device, DeviceRef::Switch(s) if s.0 == 0))
            })
            .map(|(i, _)| i)
            .collect();
        let explicit = *net
            .inter_switch_link_indices()
            .iter()
            .find(|i| !incident.contains(i))
            .unwrap();
        // One batch: a powered-off root switch plus one unrelated cable.
        let batched = fabric.with_failed(&[explicit], &[0]);
        let mut union = incident.clone();
        union.push(explicit);
        let by_links = fabric.with_failed_links(&union);
        assert_eq!(
            net.links().len() - batched.network().links().len(),
            incident.len() + 1
        );
        assert_eq!(
            batched.network().links().len(),
            by_links.network().links().len()
        );
        // The reprogrammed tables steer identically either way.
        for (s, d) in [(0u32, 5u32), (3, 12), (9, 2), (15, 8)] {
            let a = batched.route(NodeId(s), NodeId(d)).unwrap();
            let b = by_links.route(NodeId(s), NodeId(d)).unwrap();
            let hops = |r: &Route| {
                r.hops
                    .iter()
                    .map(|h| (h.switch.0, h.out_port.0))
                    .collect::<Vec<_>>()
            };
            assert_eq!(hops(&a), hops(&b), "{s}->{d} diverged");
        }
    }

    #[test]
    fn route_to_each_lid_of_a_destination_differs_in_path() {
        let fabric = Fabric::builder(4, 3).build().unwrap();
        let space = fabric.routing().lid_space();
        let dst = NodeId(12);
        let mut first_hops = std::collections::HashSet::new();
        for lid in space.lids(dst) {
            let route = fabric.route_to_lid(NodeId(0), lid).unwrap();
            assert_eq!(route.dst, dst);
            first_hops.insert(route.hops[0].out_port);
        }
        // FT(4,3): 4 LIDs spread over 2 leaf up-ports.
        assert_eq!(first_hops.len(), 2);
    }
}
