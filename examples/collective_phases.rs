//! An HPC-flavoured workload on the message engine: a butterfly
//! collective (allreduce / FFT-style) expressed as a real dependency
//! DAG — phase `i` pairs every node with its partner at distance `2^i`,
//! and a node may only enter phase `i` once its own phase `i-1` send
//! *and* the message from its phase `i-1` partner have completed. The
//! phases are therefore genuine barriers enforced by message
//! completion, not open-loop traffic at a fixed offered load, and the
//! engine reports each phase's measured completion time.
//!
//! The outcome is the same structural result the open-loop version
//! showed: on permutation-shaped communication the two schemes are
//! *duals* and finish in identical time — the multiple-LID advantage is
//! specific to many-to-one traffic, which is why the paper's evaluation
//! centres on hot-spots.
//!
//! ```text
//! cargo run --release --example collective_phases
//! ```

use ib_fabric::prelude::*;
use ib_fabric::sim::{Message, Workload};

/// The butterfly as a message DAG, one group per exchange phase so the
/// report carries per-phase completion times.
fn butterfly(num_nodes: u32, bytes: u64) -> Workload {
    assert!(num_nodes.is_power_of_two());
    let rounds = num_nodes.trailing_zeros();
    let mut w = Workload::new(num_nodes);
    for r in 0..rounds {
        let group = w.add_group(format!("phase{r}"));
        for i in 0..num_nodes {
            let deps = if r == 0 {
                vec![]
            } else {
                // Barrier in: my previous send and my partner's message.
                let prev = (r - 1) * num_nodes;
                vec![prev + i, prev + (i ^ (1 << (r - 1)))]
            };
            w.push(Message {
                src: NodeId(i),
                dst: NodeId(i ^ (1 << r)),
                bytes,
                deps,
                group,
            });
        }
    }
    w
}

/// One message per node along a fixed permutation (self-maps silent),
/// no dependencies: the message-level analogue of permutation traffic.
fn permutation_workload(perm: &[NodeId], bytes: u64) -> Workload {
    let mut w = Workload::new(perm.len() as u32);
    let group = w.add_group("permutation".to_string());
    for (src, &dst) in perm.iter().enumerate() {
        if dst.0 == src as u32 {
            continue;
        }
        w.push(Message {
            src: NodeId(src as u32),
            dst,
            bytes,
            deps: vec![],
            group,
        });
    }
    w
}

fn perm_of(pattern: &TrafficPattern) -> Vec<NodeId> {
    match pattern {
        TrafficPattern::Permutation(p) => p.clone(),
        _ => unreachable!("adversaries are permutations"),
    }
}

fn main() {
    let (m, n) = (8, 3);
    let bytes = 4096u64;
    let slid = Fabric::builder(m, n)
        .routing(RoutingKind::Slid)
        .build()
        .expect("valid");
    let mlid = Fabric::builder(m, n)
        .routing(RoutingKind::Mlid)
        .build()
        .expect("valid");
    let nodes = slid.num_nodes();

    println!(
        "butterfly collective on an {m}-port {n}-tree ({nodes} nodes), \
         {bytes} B per message, 1 VL\n"
    );
    let wl = butterfly(nodes, bytes);
    let run = |fabric: &Fabric| fabric.experiment().run_workload(&wl);
    let (s, ml) = (run(&slid), run(&mlid));
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10}",
        "phase", "distance", "SLID(ns)", "MLID(ns)", "MLID/SLID"
    );
    for (i, (gs, gm)) in s.groups.iter().zip(&ml.groups).enumerate() {
        // A phase's span runs from its first arm (the moment the last
        // barrier dependency released somewhere) to its last delivery;
        // adjacent phases overlap a little, as in a real machine.
        let (ds, dm) = (
            gs.completion_ns - gs.start_ns,
            gm.completion_ns - gm.start_ns,
        );
        println!(
            "{:<10} {:>10} {:>14} {:>14} {:>10.2}",
            i,
            1u32 << i,
            ds,
            dm,
            dm as f64 / ds as f64
        );
    }
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10.2}",
        "total",
        "",
        s.makespan_ns,
        ml.makespan_ns,
        ml.makespan_ns as f64 / s.makespan_ns as f64
    );
    println!(
        "\nevery phase is a shift-style pairing, conflict-free under both\n\
         schemes, so the columns agree phase by phase; node skew stays at\n\
         {} ns (SLID) / {} ns (MLID).",
        s.node_skew_ns, ml.node_skew_ns
    );

    // Now the adversarial permutations, where deterministic schemes differ.
    println!("\nadversarial permutations (one {bytes} B message per node):\n");
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "pattern", "SLID(ns)", "MLID(ns)", "MLID/SLID"
    );
    let patterns: Vec<(&str, TrafficPattern)> = vec![
        ("bit-complement", TrafficPattern::bit_complement(nodes)),
        ("bit-reversal", TrafficPattern::bit_reversal(nodes)),
        ("slid-adversary", slid_adversary(slid.params())),
    ];
    for (name, pattern) in patterns {
        let wl = permutation_workload(&perm_of(&pattern), bytes);
        let (s, ml) = (
            slid.experiment().run_workload(&wl),
            mlid.experiment().run_workload(&wl),
        );
        println!(
            "{:<22} {:>14} {:>14} {:>10.2}",
            name,
            s.makespan_ns,
            ml.makespan_ns,
            ml.makespan_ns as f64 / s.makespan_ns as f64
        );
    }
    println!(
        "\na structural result, visible in the near-identical columns: on\n\
         *permutation* communication MLID and SLID are duals. MLID climbs by\n\
         source digits and descends into (dest-prefix, source-suffix)\n\
         switches; SLID climbs by destination digits and descends purely by\n\
         destination — each scheme's ascent conflicts are the other's descent\n\
         conflicts mirrored, so every permutation costs them the same. The\n\
         hand-built adversary slows SLID through leaf up-port collisions and\n\
         MLID through the mirrored down-link collisions. MLID's real\n\
         advantage is many-to-one traffic (see hotspot_study), which is\n\
         exactly what the paper evaluates."
    );
}

/// A permutation adversarial to SLID's d-mod-k spreading.
///
/// Co-leaf source pairs `(leaf, 2p)` and `(leaf, 2p+1)` both target
/// destinations in the *same leaf slot* `s` (the destination's last
/// digit), which is exactly SLID's spreading digit at the leaf level —
/// the two flows collide on one leaf up-port. Across the fabric, slot `s`
/// destinations are dealt bijectively to (leaf, member) pairs, so the map
/// is a genuine permutation. MLID's source-keyed up-ports keep every pair
/// apart on the climb — but pay the mirrored price on the descent (see
/// the duality discussion in `main`).
fn slid_adversary(params: TreeParams) -> TrafficPattern {
    let nodes = params.num_nodes();
    let half = params.half();
    let leaves = nodes / half;
    assert!(
        half.is_multiple_of(2) && leaves.is_multiple_of(2),
        "needs even arity"
    );
    let mut perm: Vec<Option<u32>> = vec![None; nodes as usize];
    for src_half in 0..2u32 {
        for l_rel in 0..leaves / 2 {
            let leaf = src_half * (leaves / 2) + l_rel;
            for k in 0..half {
                let (pair, member) = (k / 2, k % 2);
                // Near-half sources own slots 0..half/2; far half the rest.
                let slot = src_half * (half / 2) + pair;
                // Per-slot bijection (l_rel, member) -> destination leaf.
                let dst_leaf = (2 * l_rel + member + leaves / 2 + slot) % leaves;
                let src = leaf * half + k;
                let dst = dst_leaf * half + slot;
                assert!(perm[src as usize].replace(dst).is_none());
            }
        }
    }
    let perm: Vec<NodeId> = perm
        .into_iter()
        .map(|d| NodeId(d.expect("total map")))
        .collect();
    // Permutation sanity: every node is hit exactly once.
    let mut seen = vec![false; nodes as usize];
    for d in &perm {
        assert!(
            !std::mem::replace(&mut seen[d.index()], true),
            "not a permutation"
        );
    }
    TrafficPattern::Permutation(perm)
}
