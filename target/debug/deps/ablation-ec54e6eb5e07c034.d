/root/repo/target/debug/deps/ablation-ec54e6eb5e07c034.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/ablation-ec54e6eb5e07c034: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
