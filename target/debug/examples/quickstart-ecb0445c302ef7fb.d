/root/repo/target/debug/examples/quickstart-ecb0445c302ef7fb.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ecb0445c302ef7fb.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
