/root/repo/target/debug/deps/rand-8f6505fcc054c40a.d: /root/stubdeps/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8f6505fcc054c40a.rmeta: /root/stubdeps/rand/src/lib.rs

/root/stubdeps/rand/src/lib.rs:
