//! Cost of the per-packet routing decisions: MLID path selection (what a
//! host stack runs per destination) and full route tracing through the
//! programmed tables (what verification sweeps run per pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ib_fabric::prelude::*;
use std::hint::black_box;

fn bench_select_dlid(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_dlid");
    for (m, n) in [(8, 3), (32, 2)] {
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            let fabric = Fabric::builder(m, n).routing(kind).build().unwrap();
            let nodes = fabric.num_nodes();
            group.bench_function(BenchmarkId::new(kind.as_str(), format!("{m}x{n}")), |b| {
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(1);
                    let src = NodeId(i % nodes);
                    let dst = NodeId((i * 7 + 3) % nodes);
                    black_box(fabric.routing().select_dlid(src, dst))
                })
            });
        }
    }
    group.finish();
}

fn bench_trace_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_route");
    for (m, n) in [(8, 3), (32, 2)] {
        let fabric = Fabric::builder(m, n).build().unwrap();
        let nodes = fabric.num_nodes();
        group.bench_function(BenchmarkId::from_parameter(format!("{m}x{n}")), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let src = NodeId(i % nodes);
                let dst = NodeId((i * 13 + 5) % nodes);
                if src == dst {
                    return;
                }
                black_box(fabric.route(src, dst).unwrap());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_select_dlid, bench_trace_route);
criterion_main!(benches);
