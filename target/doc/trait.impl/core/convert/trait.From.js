(function() {
    const implementors = Object.fromEntries([["ib_fabric",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"ib_fabric/enum.RoutingError.html\" title=\"enum ib_fabric::RoutingError\">RoutingError</a>&gt; for <a class=\"enum\" href=\"ib_fabric/enum.FabricError.html\" title=\"enum ib_fabric::FabricError\">FabricError</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"ib_fabric/enum.TopologyError.html\" title=\"enum ib_fabric::TopologyError\">TopologyError</a>&gt; for <a class=\"enum\" href=\"ib_fabric/enum.FabricError.html\" title=\"enum ib_fabric::FabricError\">FabricError</a>",0]]],["ibfat_sm",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"ibfat_sm/enum.RecognitionError.html\" title=\"enum ibfat_sm::RecognitionError\">RecognitionError</a>&gt; for <a class=\"enum\" href=\"ibfat_sm/enum.SmError.html\" title=\"enum ibfat_sm::SmError\">SmError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[790,397]}