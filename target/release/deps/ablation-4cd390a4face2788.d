/root/repo/target/release/deps/ablation-4cd390a4face2788.d: crates/bench/src/bin/ablation.rs

/root/repo/target/release/deps/ablation-4cd390a4face2788: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
