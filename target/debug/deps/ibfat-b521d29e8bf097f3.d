/root/repo/target/debug/deps/ibfat-b521d29e8bf097f3.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/ibfat-b521d29e8bf097f3: crates/cli/src/main.rs

crates/cli/src/main.rs:
