//! Fault tolerance: fail inter-switch links one by one, let the subnet
//! manager's repair path reprogram the tables, and measure what survives.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use ib_fabric::prelude::*;
use ib_fabric::RoutingError;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let fabric = Fabric::builder(8, 3).build().expect("valid");
    let net = fabric.network();
    let inter = net.inter_switch_link_indices();
    println!(
        "8-port 3-tree: {} nodes, {} switches, {} inter-switch cables\n",
        fabric.num_nodes(),
        fabric.num_switches(),
        inter.len()
    );

    let mut rng = rand_pick();
    let mut shuffled = inter.clone();
    shuffled.shuffle(&mut rng);

    println!(
        "{:>8} {:>12} {:>14} {:>20} {:>14}",
        "failed", "connected?", "routable(%)", "accepted(B/ns/node)", "avg-lat(ns)"
    );
    for k in [0usize, 1, 4, 16, 48] {
        let failed = &shuffled[..k];
        let degraded = fabric.with_failed_links(failed);
        let connected = degraded.network().is_connected();

        // Fraction of ordered pairs that still route.
        let nodes = degraded.num_nodes();
        let mut ok = 0u64;
        let mut total = 0u64;
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    continue;
                }
                total += 1;
                match degraded.route(NodeId(src), NodeId(dst)) {
                    Ok(_) => ok += 1,
                    Err(ib_fabric::FabricError::Routing(RoutingError::NoLftEntry { .. })) => {}
                    Err(e) => panic!("unexpected routing failure: {e}"),
                }
            }
        }

        let report = degraded
            .experiment()
            .traffic(TrafficPattern::Uniform)
            .offered_load(0.3)
            .duration_ns(150_000)
            .run();
        println!(
            "{:>8} {:>12} {:>14.1} {:>20.4} {:>14.0}",
            k,
            connected,
            100.0 * ok as f64 / total as f64,
            report.accepted_bytes_per_ns_per_node,
            report.avg_latency_ns(),
        );
    }
    println!("\nrepaired tables remain deadlock-free and loop-free at every stage;");
    println!("pairs lost to up*/down* semantics fail cleanly with a dropped packet.");
}

fn rand_pick() -> rand_chacha::ChaCha12Rng {
    rand_chacha::ChaCha12Rng::seed_from_u64(42)
}
