//! Route tracing: follow a DLID through the programmed forwarding tables,
//! exactly as packets are relayed in the subnet.

use crate::{Lft, Lid, LidSpace, RoutingError};
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum, SwitchId};
use serde::{Deserialize, Serialize};

/// One switch traversal of a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// The switch traversed.
    pub switch: SwitchId,
    /// The port the packet entered through (IB numbering).
    pub in_port: PortNum,
    /// The port the packet left through (IB numbering).
    pub out_port: PortNum,
}

/// A fully resolved source→destination route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// The source node.
    pub src: NodeId,
    /// The DLID the packet carried.
    pub dlid: Lid,
    /// The delivered-to node.
    pub dst: NodeId,
    /// Switch traversals, in order.
    pub hops: Vec<Hop>,
}

impl Route {
    /// Number of links traversed (switch hops + 1).
    pub fn num_links(&self) -> usize {
        self.hops.len() + 1
    }

    /// The directed inter-switch and edge links as `(device, out_port)`
    /// pairs, including the source endport's injection link. Two routes
    /// share a directed link iff these pairs intersect.
    pub fn directed_links(&self) -> Vec<(DeviceRef, PortNum)> {
        let mut out = Vec::with_capacity(self.hops.len() + 1);
        out.push((DeviceRef::Node(self.src), PortNum(1)));
        for hop in &self.hops {
            out.push((DeviceRef::Switch(hop.switch), hop.out_port));
        }
        out
    }

    /// The subsequence of [`Route::directed_links`] in the ascending
    /// (upward) phase: every link out of a non-root switch through an
    /// up-port. Root switches (level 0) use all `m` ports as down-ports,
    /// so their hops are never upward. The injection link is excluded.
    pub fn upward_links(&self, params: ibfat_topology::TreeParams) -> Vec<(SwitchId, PortNum)> {
        let half = params.half();
        self.hops
            .iter()
            .filter(|h| {
                let level = ibfat_topology::SwitchLabel::from_id(params, h.switch).level();
                level.0 > 0 && u32::from(h.out_port.0) > half
            })
            .map(|h| (h.switch, h.out_port))
            .collect()
    }
}

/// Follow `dlid` from `src` through the tables. The hop budget is
/// `2 * num_switch_levels + 2`; exceeding it reports a forwarding loop.
pub fn trace(
    net: &Network,
    space: &LidSpace,
    lfts: &[Lft],
    src: NodeId,
    dlid: Lid,
) -> Result<Route, RoutingError> {
    let (expected, _) = space.resolve(dlid).ok_or(RoutingError::UnknownLid(dlid))?;
    let mut hops = Vec::new();
    let budget = 2 * net.params().n() as usize + 2;

    // Injection: the endport's single link (severed on a degraded fabric
    // whose edge cable was failed).
    let mut at = net
        .peer_of(DeviceRef::Node(src), PortNum(1))
        .ok_or(RoutingError::DisconnectedSource(src))?;
    loop {
        match at.device {
            DeviceRef::Node(node) => {
                if node != expected {
                    return Err(RoutingError::Misdelivered {
                        src,
                        lid: dlid,
                        expected,
                        actual: node,
                    });
                }
                return Ok(Route {
                    src,
                    dlid,
                    dst: node,
                    hops,
                });
            }
            DeviceRef::Switch(sw) => {
                if hops.len() >= budget {
                    return Err(RoutingError::LoopDetected { src, lid: dlid });
                }
                let out = lfts[sw.index()].get(dlid).ok_or(RoutingError::NoLftEntry {
                    switch: sw.0,
                    lid: dlid,
                })?;
                let next =
                    net.peer_of(DeviceRef::Switch(sw), out)
                        .ok_or(RoutingError::DanglingPort {
                            switch: sw.0,
                            port: out.0,
                        })?;
                hops.push(Hop {
                    switch: sw,
                    in_port: at.port,
                    out_port: out,
                });
                at = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Routing, RoutingKind};
    use ibfat_topology::TreeParams;

    #[test]
    fn trace_paper_path_q() {
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let route = routing.trace(&net, NodeId(0), Lid(17)).unwrap();
        assert_eq!(route.dst, NodeId(4)); // P(100)
        assert_eq!(route.num_links(), 6);
        assert_eq!(route.hops.len(), 5);
        // Up two, through a root, down two.
        let ups = route.upward_links(params);
        assert_eq!(ups.len(), 2);
    }

    #[test]
    fn self_route_takes_two_links() {
        // A self-addressed packet goes up to the leaf switch and back.
        let params = TreeParams::new(4, 3).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let dlid = routing.select_dlid(NodeId(3), NodeId(3));
        let route = routing.trace(&net, NodeId(3), dlid).unwrap();
        assert_eq!(route.dst, NodeId(3));
        assert_eq!(route.num_links(), 2);
    }

    #[test]
    fn unknown_lid_is_reported() {
        let params = TreeParams::new(4, 2).unwrap();
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Slid);
        let bad = Lid(routing.lid_space().max_lid().0 + 1);
        assert!(matches!(
            routing.trace(&net, NodeId(0), bad),
            Err(RoutingError::UnknownLid(_))
        ));
    }

    #[test]
    fn loop_detection_fires_on_corrupt_tables() {
        // Hand-build tables that bounce a LID between two leaf switches'
        // up-ports forever.
        let params = TreeParams::new(4, 2).unwrap();
        let net = Network::mport_ntree(params);
        let space = LidSpace::new(params.num_nodes(), 0);
        let mut lfts: Vec<Lft> = (0..net.num_switches())
            .map(|_| Lft::new(space.max_lid()))
            .collect();
        // Every switch sends LID 1 out of port 3 (an up-port for leaves,
        // a down-port for roots) — guaranteed to ping-pong.
        for lft in &mut lfts {
            lft.set(Lid(1), PortNum(3));
        }
        let err = trace(&net, &space, &lfts, NodeId(4), Lid(1)).unwrap_err();
        assert!(matches!(
            err,
            RoutingError::LoopDetected { .. } | RoutingError::Misdelivered { .. }
        ));
    }
}
