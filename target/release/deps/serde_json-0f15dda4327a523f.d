/root/repo/target/release/deps/serde_json-0f15dda4327a523f.d: /root/stubdeps/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-0f15dda4327a523f.rlib: /root/stubdeps/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-0f15dda4327a523f.rmeta: /root/stubdeps/serde_json/src/lib.rs

/root/stubdeps/serde_json/src/lib.rs:
