//! Behavioural validation of the discrete-event IBA model: exact timing on
//! quiet networks, conservation, determinism, flow-control limits, and the
//! qualitative results the paper's evaluation rests on.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{run_once, sweep, InjectionProcess, RunSpec, SimConfig, TrafficPattern};
use ibfat_topology::{Network, NodeId, TreeParams};

fn net(m: u32, n: u32) -> Network {
    Network::mport_ntree(TreeParams::new(m, n).unwrap())
}

/// Analytic zero-load latency for a route with `links` links and
/// `switches` switch traversals.
fn zero_load_latency(cfg: &SimConfig, links: u64, switches: u64) -> u64 {
    links * cfg.fly_time_ns + switches * cfg.routing_time_ns + cfg.packet_time_ns()
}

#[test]
fn zero_load_latency_matches_analytic_value_exactly() {
    // Bit-complement on FT(4,3): every pair has gcp length 0, so every
    // route is maximal: 6 links, 5 switches. At near-zero load there is no
    // contention, so every packet's latency equals the analytic constant.
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(1);
    let report = run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::bit_complement(16),
        RunSpec {
            offered_load: 0.01,
            sim_time_ns: 2_000_000,
            warmup_ns: 100_000,
        },
    );
    let expect = zero_load_latency(&cfg, 6, 5);
    assert_eq!(expect, 6 * 20 + 5 * 100 + 256); // 876 ns
    assert!(report.delivered > 100);
    assert_eq!(report.latency.min(), expect);
    assert_eq!(report.latency.max(), expect);
    assert_eq!(report.avg_latency_ns(), expect as f64);
}

#[test]
fn zero_load_latency_shortest_route() {
    // A permutation pairing leaf siblings: P(even) <-> P(odd). Routes are
    // 2 links through 1 switch.
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(1);
    let perm: Vec<NodeId> = (0..16).map(|i| NodeId(i ^ 1)).collect();
    let report = run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Permutation(perm),
        RunSpec {
            offered_load: 0.01,
            sim_time_ns: 1_000_000,
            warmup_ns: 50_000,
        },
    );
    let expect = zero_load_latency(&cfg, 2, 1); // 2*20 + 100 + 256 = 396
    assert_eq!(report.latency.min(), expect);
    assert_eq!(report.latency.max(), expect);
}

#[test]
fn packets_are_conserved() {
    let net = net(8, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    for load in [0.1, 0.5, 0.9] {
        let report = run_once(
            &net,
            &routing,
            SimConfig::paper(2),
            TrafficPattern::Uniform,
            RunSpec::new(load, 300_000),
        );
        assert_eq!(
            report.total_generated,
            report.total_delivered + report.in_flight_at_end,
            "conservation at load {load}"
        );
        assert!(report.total_delivered > 0);
    }
}

#[test]
fn same_seed_same_result_different_seed_different_result() {
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let spec = RunSpec::new(0.4, 200_000);
    let a = run_once(
        &net,
        &routing,
        SimConfig::paper(2),
        TrafficPattern::Uniform,
        spec,
    );
    let b = run_once(
        &net,
        &routing,
        SimConfig::paper(2),
        TrafficPattern::Uniform,
        spec,
    );
    assert_eq!(a.total_generated, b.total_generated);
    assert_eq!(a.total_delivered, b.total_delivered);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.avg_latency_ns(), b.avg_latency_ns());

    let mut cfg = SimConfig::paper(2);
    cfg.seed = 12345;
    let c = run_once(&net, &routing, cfg, TrafficPattern::Uniform, spec);
    assert_ne!(a.events_processed, c.events_processed);
}

#[test]
fn accepted_traffic_tracks_offered_at_low_load() {
    let net = net(8, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let report = run_once(
        &net,
        &routing,
        SimConfig::paper(4),
        TrafficPattern::Uniform,
        RunSpec::new(0.2, 500_000),
    );
    // Offered = 0.2 bytes/ns/node; accepted must match within a few
    // percent (window-edge effects only).
    let offered = report.offered_bytes_per_ns_per_node;
    assert!((offered - 0.2).abs() < 1e-9);
    let ratio = report.accepted_bytes_per_ns_per_node / offered;
    assert!((0.95..=1.05).contains(&ratio), "accepted/offered = {ratio}");
}

#[test]
fn accepted_traffic_never_exceeds_link_capacity() {
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let report = run_once(
        &net,
        &routing,
        SimConfig::paper(4),
        TrafficPattern::Uniform,
        RunSpec::new(1.0, 300_000),
    );
    assert!(report.accepted_bytes_per_ns_per_node <= 1.0 + 1e-9);
    assert!(report.mean_link_utilization <= 1.0 + 1e-9);
    assert!(report.max_link_utilization <= 1.0 + 1e-9);
}

#[test]
fn single_buffer_credit_loop_caps_per_hop_throughput() {
    // With one-packet buffers and one VL, a hop cannot sustain more than
    // packet/(route + packet + 2*fly) — the credit round trip. Check the
    // simulator honours this well-known bound on a 2-node chain where the
    // only contention is flow control itself.
    let params = TreeParams::new(2, 1).unwrap();
    let net = Network::mport_ntree(params);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig::paper(1);
    let report = run_once(
        &net,
        &routing,
        cfg,
        TrafficPattern::Uniform, // 2 nodes: each targets the other
        RunSpec::new(1.0, 2_000_000),
    );
    let bound = 256.0 / (100.0 + 256.0 + 40.0);
    let got = report.accepted_bytes_per_ns_per_node;
    assert!(
        (got - bound).abs() < 0.03,
        "throughput {got}, credit-loop bound {bound}"
    );
}

#[test]
fn more_virtual_lanes_raise_saturation_throughput() {
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let mut last = 0.0;
    for vls in [1, 2, 4] {
        let report = run_once(
            &net,
            &routing,
            SimConfig::paper(vls),
            TrafficPattern::Uniform,
            RunSpec::new(1.0, 400_000),
        );
        let acc = report.accepted_bytes_per_ns_per_node;
        assert!(
            acc > last * 0.98,
            "throughput should not collapse with more VLs: {vls} VLs -> {acc} (prev {last})"
        );
        if vls > 1 {
            assert!(acc > last, "{vls} VLs should beat fewer");
        }
        last = acc;
    }
}

#[test]
fn mlid_beats_slid_under_hotspot_traffic() {
    // The paper's headline: with 50%-centric traffic, MLID sustains more
    // accepted traffic than SLID (Observation 3 / Remark 1).
    let net = net(8, 2);
    let mlid = Routing::build(&net, RoutingKind::Mlid);
    let slid = Routing::build(&net, RoutingKind::Slid);
    let spec = RunSpec::new(0.6, 400_000);
    let cfg = SimConfig::paper(1);
    let rm = run_once(
        &net,
        &mlid,
        cfg.clone(),
        TrafficPattern::paper_centric(),
        spec,
    );
    let rs = run_once(&net, &slid, cfg, TrafficPattern::paper_centric(), spec);
    assert!(
        rm.accepted_bytes_per_ns_per_node > rs.accepted_bytes_per_ns_per_node,
        "MLID {} should beat SLID {}",
        rm.accepted_bytes_per_ns_per_node,
        rs.accepted_bytes_per_ns_per_node
    );
}

#[test]
fn mlid_at_least_matches_slid_under_uniform_traffic() {
    // Observation 1: uniform traffic, small radix — MLID a little higher
    // or equal throughput.
    let net = net(4, 3);
    let mlid = Routing::build(&net, RoutingKind::Mlid);
    let slid = Routing::build(&net, RoutingKind::Slid);
    let spec = RunSpec::new(1.0, 400_000);
    let cfg = SimConfig::paper(1);
    let rm = run_once(&net, &mlid, cfg.clone(), TrafficPattern::Uniform, spec);
    let rs = run_once(&net, &slid, cfg, TrafficPattern::Uniform, spec);
    assert!(
        rm.accepted_bytes_per_ns_per_node >= rs.accepted_bytes_per_ns_per_node * 0.97,
        "MLID {} vs SLID {}",
        rm.accepted_bytes_per_ns_per_node,
        rs.accepted_bytes_per_ns_per_node
    );
}

#[test]
fn poisson_injection_runs_and_conserves() {
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let mut cfg = SimConfig::paper(1);
    cfg.injection = InjectionProcess::Poisson;
    let report = run_once(
        &net,
        &routing,
        cfg,
        TrafficPattern::Uniform,
        RunSpec::new(0.3, 300_000),
    );
    assert_eq!(
        report.total_generated,
        report.total_delivered + report.in_flight_at_end
    );
    // Poisson with the same mean rate: offered load figure unchanged.
    assert!((report.offered_bytes_per_ns_per_node - 0.3).abs() < 1e-9);
}

#[test]
fn latency_grows_with_load() {
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let reports = sweep(
        &net,
        &routing,
        SimConfig::paper(1),
        &TrafficPattern::Uniform,
        &[0.1, 0.4, 0.9],
        300_000,
    );
    assert!(reports[0].avg_latency_ns() <= reports[1].avg_latency_ns());
    assert!(reports[1].avg_latency_ns() < reports[2].avg_latency_ns());
}

#[test]
fn permutation_self_map_nodes_stay_silent() {
    // Identity permutation: nobody sends.
    let net = net(4, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let perm: Vec<NodeId> = (0..8).map(NodeId).collect();
    let report = run_once(
        &net,
        &routing,
        SimConfig::paper(1),
        TrafficPattern::Permutation(perm),
        RunSpec::new(0.5, 100_000),
    );
    assert_eq!(report.total_generated, 0);
    assert_eq!(report.total_delivered, 0);
}

#[test]
fn updown_routing_also_simulates_cleanly() {
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::UpDown);
    let report = run_once(
        &net,
        &routing,
        SimConfig::paper(2),
        TrafficPattern::Uniform,
        RunSpec::new(0.3, 300_000),
    );
    assert_eq!(
        report.total_generated,
        report.total_delivered + report.in_flight_at_end
    );
    assert!(report.delivered > 0);
}

#[test]
fn path_selection_policies_all_deliver_and_conserve() {
    use ibfat_sim::PathSelection;
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    for policy in [
        PathSelection::Paper,
        PathSelection::RandomPerPacket,
        PathSelection::RoundRobinPerSource,
    ] {
        let mut cfg = SimConfig::paper(2);
        cfg.path_selection = policy;
        let report = run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::Uniform,
            RunSpec::new(0.4, 200_000),
        );
        assert_eq!(
            report.total_generated,
            report.total_delivered + report.in_flight_at_end,
            "{policy:?}"
        );
        assert_eq!(report.dropped, 0, "{policy:?}");
        assert!(report.delivered > 0, "{policy:?}");
    }
}

#[test]
fn vl_assignment_policies_run() {
    use ibfat_sim::VlAssignment;
    let net = net(8, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    for policy in [
        VlAssignment::Random,
        VlAssignment::DestinationHash,
        VlAssignment::SourceHash,
    ] {
        let mut cfg = SimConfig::paper(4);
        cfg.vl_assignment = policy;
        let report = run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::paper_centric(),
            RunSpec::new(0.5, 200_000),
        );
        assert!(report.delivered > 0, "{policy:?}");
        assert_eq!(
            report.total_generated,
            report.total_delivered + report.in_flight_at_end,
            "{policy:?}"
        );
    }
}

#[test]
fn destination_hash_vls_help_under_hotspot() {
    // Confining hot-spot traffic to one lane protects the other lanes'
    // uniform traffic — accepted traffic should not be worse than the
    // random assignment.
    use ibfat_sim::VlAssignment;
    let net = net(8, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let acc = |assignment| {
        let mut cfg = SimConfig::paper(4);
        cfg.vl_assignment = assignment;
        run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::paper_centric(),
            RunSpec::new(0.8, 300_000),
        )
        .accepted_bytes_per_ns_per_node
    };
    let random = acc(VlAssignment::Random);
    let dest = acc(VlAssignment::DestinationHash);
    assert!(
        dest > random * 0.95,
        "dest-hash {dest} should not trail random {random}"
    );
}

#[test]
fn degraded_fabric_drops_unroutable_packets_cleanly() {
    // Cut a node's only cable, rebuild with fault repair, and let uniform
    // traffic target the unreachable node: those packets must be dropped,
    // everything else delivered, and the books must balance.
    let mut degraded = net(4, 2);
    let victim = degraded
        .links()
        .iter()
        .position(|l| {
            l.a.device == ibfat_topology::DeviceRef::Node(NodeId(7))
                || l.b.device == ibfat_topology::DeviceRef::Node(NodeId(7))
        })
        .unwrap();
    degraded.remove_link(victim);
    let routing = ibfat_routing::build_fault_tolerant(&degraded, RoutingKind::Mlid);
    let report = run_once(
        &degraded,
        &routing,
        SimConfig::paper(1),
        TrafficPattern::Uniform,
        RunSpec::new(0.3, 200_000),
    );
    assert!(
        report.dropped > 0,
        "traffic to the cut node must be dropped"
    );
    assert_eq!(
        report.total_generated,
        report.total_delivered + report.dropped + report.in_flight_at_end
    );
}

#[test]
fn simulation_respects_analytic_bounds() {
    use ibfat_sim::bounds;
    let params = TreeParams::new(8, 2).unwrap();
    let network = Network::mport_ntree(params);
    let routing = Routing::build(&network, RoutingKind::Mlid);
    for vls in [1u8, 2, 4] {
        let cfg = SimConfig::paper(vls);
        // Uniform saturation never exceeds the credit-loop bound.
        let r = run_once(
            &network,
            &routing,
            cfg.clone(),
            TrafficPattern::Uniform,
            RunSpec::new(1.0, 300_000),
        );
        let bound = bounds::uniform_saturation_bound(&cfg);
        assert!(
            r.accepted_bytes_per_ns_per_node <= bound + 0.02,
            "{vls} VLs: accepted {} > bound {bound}",
            r.accepted_bytes_per_ns_per_node
        );
        // Hot-spot accepted traffic never exceeds its bound either.
        let rh = run_once(
            &network,
            &routing,
            cfg.clone(),
            TrafficPattern::paper_centric(),
            RunSpec::new(0.5, 300_000),
        );
        let hbound = bounds::hotspot_saturation_bound(params, &cfg, 0.5, 0.5);
        assert!(
            rh.accepted_bytes_per_ns_per_node <= hbound + 0.02,
            "{vls} VLs hotspot: accepted {} > bound {hbound}",
            rh.accepted_bytes_per_ns_per_node
        );
        // Every observed latency is at least the shortest-route bound.
        assert!(r.latency.min() >= bounds::zero_load_latency_ns(params, &cfg, params.n() - 1));
    }
}

#[test]
fn flight_recorder_captures_exact_timeline() {
    use ibfat_sim::TraceEvent;
    // Quiet network: one traced packet shows the textbook pipeline.
    let net = net(4, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let mut cfg = SimConfig::paper(1);
    cfg.trace_first_packets = 8;
    let report = run_once(
        &net,
        &routing,
        cfg,
        TrafficPattern::bit_complement(16),
        RunSpec {
            offered_load: 0.01,
            sim_time_ns: 500_000,
            warmup_ns: 10_000,
        },
    );
    let traces = report.traces.expect("tracing enabled");
    assert_eq!(traces.len(), 8);
    for t in &traces {
        assert!(t.completed(), "quiet network completes every packet");
        assert_eq!(t.latency_ns(), Some(876), "{}", t.render());
        // Generated, injected, then 5 switches x (arrive, route, grant,
        // transmit), then delivered.
        assert_eq!(t.events.len(), 2 + 5 * 4 + 1);
        assert!(matches!(t.events[0].1, TraceEvent::Generated));
        assert!(matches!(
            t.events.last().expect("nonempty").1,
            TraceEvent::Delivered
        ));
        // Timestamps never regress.
        for pair in t.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }
}

#[test]
fn paper_selection_is_order_preserving_random_is_not() {
    use ibfat_sim::PathSelection;
    let net = net(8, 2);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let run = |policy| {
        let mut cfg = SimConfig::paper(2);
        cfg.path_selection = policy;
        run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::Uniform,
            RunSpec::new(0.7, 300_000),
        )
    };
    // The paper's one-path-per-pair mapping delivers every flow in order.
    let paper = run(PathSelection::Paper);
    assert_eq!(paper.out_of_order, 0, "rank selection must not reorder");
    // Per-packet random multipathing reorders under load — the hidden
    // cost of naive multipath in InfiniBand.
    let random = run(PathSelection::RandomPerPacket);
    assert!(
        random.out_of_order > 0,
        "random per-packet selection should reorder at 0.7 load"
    );
}

#[test]
fn adaptive_up_routing_delivers_and_relieves_credit_stalls() {
    // Adaptive upward routing (an extension beyond IBA's deterministic
    // tables) must conserve packets, stay deadlock-free in practice, and
    // at VL1 under uniform saturation it should not do worse than the
    // deterministic tables — spreading climbs over idle up-ports works
    // around single-buffer credit stalls.
    let net = net(8, 3);
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let run = |adaptive| {
        let mut cfg = SimConfig::paper(1);
        cfg.adaptive_up = adaptive;
        run_once(
            &net,
            &routing,
            cfg,
            TrafficPattern::Uniform,
            RunSpec::new(1.0, 300_000),
        )
    };
    let det = run(false);
    let ada = run(true);
    assert_eq!(
        ada.total_generated,
        ada.total_delivered + ada.in_flight_at_end
    );
    assert!(
        ada.accepted_bytes_per_ns_per_node >= det.accepted_bytes_per_ns_per_node * 0.98,
        "adaptive {} vs deterministic {}",
        ada.accepted_bytes_per_ns_per_node,
        det.accepted_bytes_per_ns_per_node
    );
}

#[test]
fn adaptive_up_requires_intact_fabric() {
    let mut degraded = net(4, 2);
    let idx = degraded.inter_switch_link_indices()[0];
    degraded.remove_link(idx);
    let routing = ibfat_routing::build_fault_tolerant(&degraded, RoutingKind::Mlid);
    let mut cfg = SimConfig::paper(1);
    cfg.adaptive_up = true;
    let result = std::panic::catch_unwind(|| {
        run_once(
            &degraded,
            &routing,
            cfg,
            TrafficPattern::Uniform,
            RunSpec::new(0.1, 10_000),
        )
    });
    assert!(result.is_err(), "degraded fabric must reject adaptive mode");
}
