/root/repo/target/release/deps/ibfat_sm-9a1938385f7a650d.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/release/deps/libibfat_sm-9a1938385f7a650d.rlib: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/release/deps/libibfat_sm-9a1938385f7a650d.rmeta: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
