/root/repo/target/debug/deps/ibfat_routing-91aa65150307455f.d: crates/routing/src/lib.rs crates/routing/src/deadlock.rs crates/routing/src/error.rs crates/routing/src/fault.rs crates/routing/src/lft.rs crates/routing/src/lid.rs crates/routing/src/load.rs crates/routing/src/mlid.rs crates/routing/src/path.rs crates/routing/src/scheme.rs crates/routing/src/slid.rs crates/routing/src/updown.rs crates/routing/src/verify.rs

/root/repo/target/debug/deps/ibfat_routing-91aa65150307455f: crates/routing/src/lib.rs crates/routing/src/deadlock.rs crates/routing/src/error.rs crates/routing/src/fault.rs crates/routing/src/lft.rs crates/routing/src/lid.rs crates/routing/src/load.rs crates/routing/src/mlid.rs crates/routing/src/path.rs crates/routing/src/scheme.rs crates/routing/src/slid.rs crates/routing/src/updown.rs crates/routing/src/verify.rs

crates/routing/src/lib.rs:
crates/routing/src/deadlock.rs:
crates/routing/src/error.rs:
crates/routing/src/fault.rs:
crates/routing/src/lft.rs:
crates/routing/src/lid.rs:
crates/routing/src/load.rs:
crates/routing/src/mlid.rs:
crates/routing/src/path.rs:
crates/routing/src/scheme.rs:
crates/routing/src/slid.rs:
crates/routing/src/updown.rs:
crates/routing/src/verify.rs:
