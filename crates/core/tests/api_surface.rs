//! Exercise the remaining public API surface of the high-level crate.

use ib_fabric::prelude::*;
use ib_fabric::{aggregate, LidSpace};

#[test]
fn replicated_experiments_aggregate() {
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let reports = fabric
        .experiment()
        .offered_load(0.4)
        .duration_ns(60_000)
        .run_replicated(&[11, 22, 33]);
    assert_eq!(reports.len(), 3);
    let agg = aggregate(&reports);
    assert_eq!(agg.n, 3);
    assert!(agg.mean_accepted > 0.0);
    assert!(agg.mean_latency_ns > 0.0);
}

#[test]
fn link_stats_cover_every_directed_link() {
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let report = fabric
        .experiment()
        .offered_load(0.3)
        .duration_ns(60_000)
        .collect_link_stats(true)
        .run();
    let links = report.link_utilization.unwrap();
    // m ports per switch + one injection side per node.
    let expected = fabric.num_switches() as usize * 4 + fabric.num_nodes() as usize;
    assert_eq!(links.len(), expected);
    assert!(links.iter().all(|l| (0.0..=1.0).contains(&l.utilization)));
    assert!(links.iter().any(|l| l.utilization > 0.0));
}

#[test]
fn fabric_exposes_consistent_views() {
    let fabric = Fabric::builder(8, 2)
        .routing(RoutingKind::Slid)
        .build()
        .unwrap();
    assert_eq!(fabric.num_nodes(), 32);
    assert_eq!(fabric.num_switches(), 12);
    assert_eq!(fabric.params().m(), 8);
    assert_eq!(fabric.routing().kind(), RoutingKind::Slid);
    assert_eq!(fabric.network().params(), fabric.params());
    assert_eq!(
        fabric.routing().lid_space(),
        &LidSpace::new(32, 0),
        "SLID assigns one LID per node"
    );
}

#[test]
fn route_to_every_lid_of_every_destination() {
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let space = fabric.routing().lid_space().clone();
    for src in 0..fabric.num_nodes() {
        for dst in 0..fabric.num_nodes() {
            for lid in space.lids(NodeId(dst)) {
                let route = fabric.route_to_lid(NodeId(src), lid).unwrap();
                assert_eq!(route.dst, NodeId(dst));
            }
        }
    }
}

#[test]
fn experiment_defaults_match_the_paper() {
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let report = fabric.experiment().duration_ns(40_000).run();
    // Defaults: 256-byte packets at 0.3 load -> offered 0.3 B/ns/node.
    assert!((report.offered_bytes_per_ns_per_node - 0.3).abs() < 1e-9);
    assert_eq!(report.sim_time_ns, 40_000);
    assert_eq!(report.warmup_ns, 8_000);
}

#[test]
fn error_types_render_readably() {
    let err = Fabric::builder(6, 2).build().unwrap_err();
    let text = err.to_string();
    assert!(text.contains("power of two"), "{text}");
    let fabric = Fabric::builder(4, 2).build().unwrap();
    let bad = fabric
        .route_to_lid(NodeId(0), ib_fabric::Lid(999))
        .unwrap_err();
    assert!(bad.to_string().contains("not assigned"), "{bad}");
}
