/root/repo/target/debug/deps/end_to_end-7b354d05cb42f58a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7b354d05cb42f58a: tests/end_to_end.rs

tests/end_to_end.rs:
