/root/repo/target/debug/deps/ibfat-a907812713bbe7b8.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libibfat-a907812713bbe7b8.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
