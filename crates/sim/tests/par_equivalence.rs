//! The parallel engine's determinism contract.
//!
//! `ParSimulator` promises reports *bit-identical* to the sequential
//! `Simulator` for the same inputs and seed, at any thread count. These
//! tests are the license to flip `--threads` on without revalidating a
//! single experiment: full `SimReport` equality (counters, latency
//! histograms, link utilization, flight-recorder traces, out-of-order
//! accounting) with only the wall-clock throughput field zeroed.

use ibfat_routing::{Routing, RoutingKind};
use ibfat_sim::{
    generators, run_once, run_once_par, run_workload, run_workload_par, traces_to_jsonl,
    CalendarKind, ClosedLoopKind, FabricCounters, ParSimulator, PartitionKind, RouteBackend,
    RunSpec, SimConfig, SimReport, Simulator, TraceSampling, TrafficPattern, WindowPolicy,
    Workload,
};
use ibfat_topology::{Network, NodeId, TreeParams};
use proptest::prelude::*;

fn normalized(mut r: SimReport) -> SimReport {
    // The only host-dependent fields; everything else must match exactly.
    r.events_per_sec = 0.0;
    r.packets_per_sec = 0.0;
    r
}

fn par_report(
    net: &Network,
    routing: &Routing,
    cfg: &SimConfig,
    pattern: &TrafficPattern,
    spec: RunSpec,
    threads: usize,
) -> SimReport {
    normalized(run_once_par(
        net,
        routing,
        cfg.clone(),
        pattern.clone(),
        spec,
        threads,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any legal configuration, any thread count: same report.
    #[test]
    fn par_reports_equal_sequential(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2)), Just((8, 3))],
        vls in prop_oneof![Just(1u8), Just(4)],
        seed in any::<u64>(),
        load in prop_oneof![Just(0.15f64), Just(0.45), Just(0.9)],
        calendar in prop_oneof![
            Just(CalendarKind::TimingWheel),
            Just(CalendarKind::BinaryHeap),
        ],
        partition in prop_oneof![
            Just(PartitionKind::FatTree),
            Just(PartitionKind::Block),
        ],
        window_policy in prop_oneof![
            Just(WindowPolicy::Adaptive),
            Just(WindowPolicy::Fixed),
        ],
        route_backend in prop_oneof![
            Just(RouteBackend::Table),
            Just(RouteBackend::Oracle),
        ],
    ) {
        // Keep the simulated horizon small: proptest runs many cases,
        // and FT(8,3) has 512 nodes.
        let sim_time = if m == 8 && n == 3 { 8_000 } else { 30_000 };
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let cfg = SimConfig {
            num_vls: vls,
            seed,
            calendar,
            partition,
            window_policy,
            route_backend,
            ..SimConfig::default()
        };
        let pattern = TrafficPattern::Uniform;
        let spec = RunSpec::new(load, sim_time);
        let seq = normalized(run_once(
            &net, &routing, cfg.clone(), pattern.clone(), spec,
        ));
        for threads in [1usize, 2, 4] {
            let par = par_report(&net, &routing, &cfg, &pattern, spec, threads);
            prop_assert_eq!(&par, &seq, "divergence at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adaptive windows are a pure barrier-count optimization: for every
    /// fabric × routing scheme × thread count, an adaptive-window run
    /// must be bit-identical to a fixed-window run of the same inputs —
    /// reports AND every per-port counter register the probe collects.
    /// (Window boundaries never reorder dispatch: cohorts are formed by
    /// `(time, lineage)` order alone; the policy only chooses how far a
    /// window may jump ahead when all shards are quiet.)
    #[test]
    fn adaptive_windows_equal_fixed_windows(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2))],
        scheme in prop_oneof![Just(RoutingKind::Mlid), Just(RoutingKind::Slid)],
        seed in any::<u64>(),
        partition in prop_oneof![
            Just(PartitionKind::FatTree),
            Just(PartitionKind::Block),
        ],
    ) {
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, scheme);
        let base = SimConfig {
            num_vls: 2,
            seed,
            partition,
            ..SimConfig::default()
        };
        let pattern = TrafficPattern::Uniform;
        let spec = RunSpec::new(0.4, 25_000);
        for threads in [1usize, 2, 4] {
            let [fixed, adaptive] = [WindowPolicy::Fixed, WindowPolicy::Adaptive].map(|window_policy| {
                let cfg = SimConfig { window_policy, ..base.clone() };
                let (report, counters) = ParSimulator::with_probe(
                    &net,
                    &routing,
                    cfg,
                    pattern.clone(),
                    spec.offered_load,
                    spec.sim_time_ns,
                    spec.warmup_ns,
                    threads,
                    FabricCounters::new(&net, base.num_vls),
                )
                .run_observed()
                .expect("no worker panicked");
                (normalized(report), counters.switch_totals())
            });
            prop_assert_eq!(
                adaptive, fixed,
                "fixed/adaptive divergence at {} threads", threads
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same contract for the message-level workload layer: the
    /// `WorkloadReport` — which embeds every per-message timestamp —
    /// must be bit-identical across thread counts, calendars, and
    /// routing schemes. Completion-driven injection is the hard case:
    /// unlike pattern mode, every injection time depends on the fabric.
    #[test]
    fn workload_reports_equal_sequential(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((8, 2))],
        kind in 0usize..4,
        scheme in prop_oneof![Just(RoutingKind::Mlid), Just(RoutingKind::Slid)],
        seed in any::<u64>(),
        calendar in prop_oneof![
            Just(CalendarKind::TimingWheel),
            Just(CalendarKind::BinaryHeap),
        ],
    ) {
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let nodes = net.num_nodes() as u32;
        let routing = Routing::build(&net, scheme);
        let cfg = SimConfig {
            num_vls: 2,
            seed,
            calendar,
            ..SimConfig::default()
        };
        let wl: Workload = match kind {
            0 => generators::allreduce_ring(nodes, 4096),
            1 => generators::all_to_all(nodes, 1024),
            2 => generators::bcast_binomial(nodes, NodeId(0), 2048),
            _ => generators::closed_loop(
                nodes, ClosedLoopKind::Uniform, 512, 2, 6, seed,
            ),
        };
        let seq = run_workload(&net, &routing, cfg.clone(), &wl);
        prop_assert_eq!(seq.messages as usize, wl.messages.len());
        for threads in [2usize, 4] {
            let par = run_workload_par(&net, &routing, cfg.clone(), &wl, threads);
            prop_assert_eq!(&par, &seq, "divergence at {} threads", threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The flight recorder's contract, in both directions: a recorded
    /// run is bit-identical to an unrecorded one (the recorder only ever
    /// writes its own buffer), and the rendered trace JSONL is
    /// byte-identical at every thread count (slot assignment is a pure
    /// flow function, so sampling survives sharding).
    #[test]
    fn recorded_runs_equal_unrecorded_and_traces_survive_sharding(
        (m, n) in prop_oneof![Just((4u32, 2u32)), Just((4, 3)), Just((8, 2))],
        scheme in prop_oneof![Just(RoutingKind::Mlid), Just(RoutingKind::Slid)],
        seed in any::<u64>(),
        calendar in prop_oneof![
            Just(CalendarKind::TimingWheel),
            Just(CalendarKind::BinaryHeap),
        ],
        sampling in prop_oneof![
            Just(TraceSampling::FirstN),
            Just(TraceSampling::OneInN(3)),
            Just(TraceSampling::Pairs(vec![(0, 1), (2, 3), (1, 0)])),
        ],
    ) {
        let params = TreeParams::new(m, n).expect("valid params");
        let net = Network::mport_ntree(params);
        let routing = Routing::build(&net, scheme);
        let base = SimConfig {
            num_vls: 2,
            seed,
            calendar,
            ..SimConfig::default()
        };
        let pattern = TrafficPattern::Uniform;
        let spec = RunSpec::new(0.5, 25_000);

        let plain = normalized(run_once(
            &net, &routing, base.clone(), pattern.clone(), spec,
        ));
        prop_assert!(plain.traces.is_none());

        let recorded_cfg = SimConfig {
            trace_first_packets: 16,
            trace_sampling: sampling,
            ..base
        };
        let recorded = normalized(run_once(
            &net, &routing, recorded_cfg.clone(), pattern.clone(), spec,
        ));
        let traces = recorded.traces.clone().expect("recording was on");
        let jsonl = traces_to_jsonl(&traces);

        // Recording must not perturb the simulation: stripped of the
        // buffer itself, the recorded report is the unrecorded report.
        let mut stripped = recorded;
        stripped.traces = None;
        prop_assert_eq!(&stripped, &plain);

        // And the rendered spans are byte-stable under sharding.
        for threads in [1usize, 2, 4] {
            let par = par_report(&net, &routing, &recorded_cfg, &pattern, spec, threads);
            let par_jsonl = traces_to_jsonl(par.traces.as_deref().expect("recording was on"));
            prop_assert_eq!(
                &par_jsonl, &jsonl,
                "trace divergence at {} threads", threads
            );
        }
    }
}

/// A deeper fixed point: traces and per-link stats on, hot-spot traffic,
/// an awkward thread count that leaves unequal shards.
#[test]
fn ft43_hotspot_with_traces_and_link_stats_is_bit_identical() {
    let net = Network::mport_ntree(TreeParams::new(4, 3).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig {
        num_vls: 2,
        seed: 0xDEC0DE,
        trace_first_packets: 32,
        collect_link_stats: true,
        ..SimConfig::default()
    };
    let pattern = TrafficPattern::Centric {
        hotspot: NodeId(3),
        fraction: 0.2,
    };
    let spec = RunSpec::new(0.5, 60_000);
    let seq = normalized(run_once(&net, &routing, cfg.clone(), pattern.clone(), spec));
    assert!(seq.delivered > 0, "the run must carry traffic");
    assert!(seq.traces.is_some() && seq.link_utilization.is_some());
    for threads in [2usize, 3, 5, 8] {
        let par = par_report(&net, &routing, &cfg, &pattern, spec, threads);
        assert_eq!(par, seq, "divergence at {threads} threads");
    }
}

/// The `FabricCounters` probe merges exactly: every per-device register
/// is owned by one shard, so the absorbed totals equal a sequential
/// probed run's.
#[test]
fn fabric_counter_registers_merge_exactly() {
    let net = Network::mport_ntree(TreeParams::new(4, 2).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let cfg = SimConfig {
        num_vls: 2,
        seed: 0xC0FFEE,
        ..SimConfig::default()
    };
    let pattern = TrafficPattern::Uniform;
    let (load, sim_time) = (0.6, 50_000);

    let (seq_report, seq_counters) = Simulator::with_probe(
        &net,
        &routing,
        cfg.clone(),
        pattern.clone(),
        load,
        sim_time,
        0,
        FabricCounters::new(&net, cfg.num_vls),
    )
    .run_observed();

    let (par_report, par_counters) = ParSimulator::with_probe(
        &net,
        &routing,
        cfg.clone(),
        pattern.clone(),
        load,
        sim_time,
        0,
        4,
        FabricCounters::new(&net, cfg.num_vls),
    )
    .run_observed()
    .expect("no worker panicked");

    assert_eq!(normalized(par_report), normalized(seq_report));
    let seq_sw = seq_counters.switch_totals();
    let par_sw = par_counters.switch_totals();
    assert_eq!(seq_sw, par_sw, "switch register totals diverged");
    assert_eq!(
        seq_counters.hottest_ports(4),
        par_counters.hottest_ports(4),
        "hot-port ranking diverged"
    );
}

/// Feasibility clamps: zero lookahead and absurd thread counts both
/// produce the sequential answer rather than an incorrect parallel one.
#[test]
fn degenerate_configurations_fall_back_to_sequential() {
    let net = Network::mport_ntree(TreeParams::new(4, 2).expect("valid params"));
    let routing = Routing::build(&net, RoutingKind::Mlid);
    let spec = RunSpec::new(0.3, 20_000);

    // Zero wire flight ⇒ zero lookahead ⇒ sequential fallback.
    let cfg = SimConfig {
        fly_time_ns: 0,
        ..SimConfig::default()
    };
    let seq = normalized(run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    let par = par_report(&net, &routing, &cfg, &TrafficPattern::Uniform, spec, 8);
    assert_eq!(par, seq);

    // More threads than switches: clamped, still identical.
    let cfg = SimConfig::default();
    let seq = normalized(run_once(
        &net,
        &routing,
        cfg.clone(),
        TrafficPattern::Uniform,
        spec,
    ));
    let par = par_report(&net, &routing, &cfg, &TrafficPattern::Uniform, spec, 64);
    assert_eq!(par, seq);
}
