//! Offline stub of `serde_json`.
//!
//! Supports the `json!` macro and printing of the [`Value`] tree it
//! builds. Generic `to_string::<T>` works only for types that override
//! `serde::Serialize::__stub_json` (i.e. `Value`); for everything else it
//! returns an error — workspace crates hand-roll their JSON instead.
//! `from_str` always errors: there is no deserializer here.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl serde::Serialize for Value {
    fn __stub_json(&self) -> Option<String> {
        let mut out = String::new();
        self.write_compact(&mut out);
        Some(out)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i64) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);

macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::UInt(v as u64) }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(f64::from(v))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[derive(Debug)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value
        .__stub_json()
        .ok_or_else(|| Error("serde_json stub cannot serialize this type".into()))
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    // `Value` is the only type that can reach this point; re-render it.
    let mut out = String::new();
    parse_value(&compact)
        .ok_or_else(|| Error("serde_json stub produced malformed JSON".into()))?
        .write_pretty(&mut out, 0);
    Ok(out)
}

pub fn from_str<T: serde::de::DeserializeOwned>(_s: &str) -> Result<T, Error> {
    Err(Error(
        "serde_json stub cannot deserialize: use the hand-rolled parsers".into(),
    ))
}

/// Minimal JSON parser used by `to_string_pretty` to round-trip the
/// compact form emitted above. Not exposed; tolerant only of its own
/// output grammar.
fn parse_value(s: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match *self.bytes.get(self.pos)? {
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.eat(b'}') {
                    return Some(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if !self.eat(b':') {
                        return None;
                    }
                    entries.push((key, self.value()?));
                    if self.eat(b'}') {
                        return Some(Value::Object(entries));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.eat(b']') {
                    return Some(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    if self.eat(b']') {
                        return Some(Value::Array(items));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            b'"' => self.string().map(Value::String),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Option<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Some(v)
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(self.bytes.get(self.pos + 1..self.pos + 5)?)
                                    .ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                b => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let s = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = s.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                    let _ = b;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        if text.contains(['.', 'e', 'E']) {
            text.parse().ok().map(Value::Float)
        } else if text.starts_with('-') {
            text.parse().ok().map(Value::Int)
        } else {
            text.parse().ok().map(Value::UInt)
        }
    }
}

#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_and_prints() {
        let v = json!({
            "a": 1u32,
            "b": json!([1, 2, 3]),
            "c": "text",
            "d": 1.5f64,
            "e": json!(null),
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(
            compact,
            r#"{"a":1,"b":[1,2,3],"c":"text","d":1.5,"e":null}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"a\": 1"));
    }
}
