//! Workload outcome: per-message timings and the report that
//! summarizes them.
//!
//! Everything here is integer nanoseconds computed by exact
//! nearest-rank statistics over the recorded samples — no floating
//! point, no approximate histogram buckets — so a report is
//! bit-comparable across engines and thread counts by simple `==`.

use crate::Workload;
use serde::{Deserialize, Serialize};

/// The lifecycle timestamps of one message, recorded by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MessageTiming {
    /// All dependencies satisfied; packets entered the source queue.
    pub armed_ns: u64,
    /// First byte of the first packet on the wire.
    pub injected_ns: u64,
    /// Last packet delivered at the destination.
    pub completed_ns: u64,
}

/// Completion summary for one message group (a collective instance or
/// a phase).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group's name from [`Workload::group_names`].
    pub name: String,
    /// Messages in the group.
    pub messages: u64,
    /// Payload bytes in the group.
    pub bytes: u64,
    /// Earliest arm time of any message in the group.
    pub start_ns: u64,
    /// Latest completion of any message in the group — for a
    /// collective, its completion time.
    pub completion_ns: u64,
}

/// Exact nearest-rank latency percentiles over message service times
/// (`completed - armed`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MsgLatency {
    pub min_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
    /// Integer mean (floor of sum/count) — exact, merge-stable.
    pub mean_ns: u64,
}

/// The outcome of driving a [`Workload`] to completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// Node universe of the workload.
    pub num_nodes: u32,
    /// Total messages completed.
    pub messages: u64,
    /// Total payload bytes moved.
    pub total_bytes: u64,
    /// Packets the payload segmented into.
    pub packets: u64,
    /// Time of the last message completion — the workload's makespan.
    pub makespan_ns: u64,
    /// Per-message service-time percentiles.
    pub latency: MsgLatency,
    /// Per-group (per-collective / per-phase) completion times, in
    /// group-id order.
    pub groups: Vec<GroupReport>,
    /// Spread between the first and last node to finish participating
    /// (a node's finish is the completion of its last message as
    /// sender or receiver).
    pub node_skew_ns: u64,
    /// Simulator events processed while driving the workload.
    pub events: u64,
    /// The raw per-message record, in message-id order. Carried in the
    /// report so engine equivalence (`==`) covers every timestamp, not
    /// just the aggregates.
    pub timings: Vec<MessageTiming>,
}

impl WorkloadReport {
    /// Summarize a completed run. `packet_bytes` is the MTU used for
    /// segmentation; `events` the engine's processed-event count.
    pub fn build(
        w: &Workload,
        timings: Vec<MessageTiming>,
        packet_bytes: u64,
        events: u64,
    ) -> WorkloadReport {
        assert_eq!(
            timings.len(),
            w.messages.len(),
            "one timing per message required"
        );
        let mut service: Vec<u64> = timings
            .iter()
            .map(|t| t.completed_ns.saturating_sub(t.armed_ns))
            .collect();
        service.sort_unstable();
        let latency = MsgLatency {
            min_ns: service.first().copied().unwrap_or(0),
            p50_ns: nearest_rank(&service, 50),
            p95_ns: nearest_rank(&service, 95),
            p99_ns: nearest_rank(&service, 99),
            max_ns: service.last().copied().unwrap_or(0),
            mean_ns: if service.is_empty() {
                0
            } else {
                service.iter().sum::<u64>() / service.len() as u64
            },
        };

        let mut groups: Vec<GroupReport> = w
            .group_names
            .iter()
            .map(|name| GroupReport {
                name: name.clone(),
                messages: 0,
                bytes: 0,
                start_ns: u64::MAX,
                completion_ns: 0,
            })
            .collect();
        let mut node_finish = vec![0u64; w.num_nodes as usize];
        let mut node_active = vec![false; w.num_nodes as usize];
        let mut packets = 0u64;
        for (m, t) in w.messages.iter().zip(&timings) {
            packets += m.bytes.div_ceil(packet_bytes.max(1));
            let g = &mut groups[m.group as usize];
            g.messages += 1;
            g.bytes += m.bytes;
            g.start_ns = g.start_ns.min(t.armed_ns);
            g.completion_ns = g.completion_ns.max(t.completed_ns);
            for node in [m.src, m.dst] {
                node_active[node.index()] = true;
                node_finish[node.index()] = node_finish[node.index()].max(t.completed_ns);
            }
        }
        for g in &mut groups {
            if g.messages == 0 {
                g.start_ns = 0;
            }
        }
        let (mut first, mut last) = (u64::MAX, 0u64);
        for (i, &f) in node_finish.iter().enumerate() {
            if node_active[i] {
                first = first.min(f);
                last = last.max(f);
            }
        }
        let node_skew_ns = if first == u64::MAX { 0 } else { last - first };

        WorkloadReport {
            num_nodes: w.num_nodes,
            messages: w.messages.len() as u64,
            total_bytes: w.total_bytes(),
            packets,
            makespan_ns: timings.iter().map(|t| t.completed_ns).max().unwrap_or(0),
            latency,
            groups,
            node_skew_ns,
            events,
            timings,
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// sample with at least `pct`% of the distribution at or below it.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * pct).div_ceil(100).max(1) as usize;
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn nearest_rank_is_exact() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&s, 50), 50);
        assert_eq!(nearest_rank(&s, 95), 95);
        assert_eq!(nearest_rank(&s, 99), 99);
        assert_eq!(nearest_rank(&[7], 50), 7);
        assert_eq!(nearest_rank(&[3, 9], 50), 3);
        assert_eq!(nearest_rank(&[3, 9], 99), 9);
    }

    #[test]
    fn build_summarizes_groups_packets_and_skew() {
        let w = generators::bcast_binomial(4, ibfat_topology::NodeId(0), 1000);
        // 3 messages: 0->1 (round 0), 0->2, 1->3 (round 1).
        let timings = vec![
            MessageTiming {
                armed_ns: 0,
                injected_ns: 5,
                completed_ns: 100,
            },
            MessageTiming {
                armed_ns: 0,
                injected_ns: 105,
                completed_ns: 220,
            },
            MessageTiming {
                armed_ns: 100,
                injected_ns: 110,
                completed_ns: 260,
            },
        ];
        let r = WorkloadReport::build(&w, timings, 256, 999);
        assert_eq!(r.messages, 3);
        assert_eq!(r.total_bytes, 3000);
        assert_eq!(r.packets, 3 * 4, "ceil(1000/256) = 4 per message");
        assert_eq!(r.makespan_ns, 260);
        assert_eq!(r.groups.len(), 1);
        assert_eq!(r.groups[0].completion_ns, 260);
        assert_eq!(r.groups[0].start_ns, 0);
        // service times: 100, 220, 160 → sorted 100,160,220
        assert_eq!(r.latency.min_ns, 100);
        assert_eq!(r.latency.p50_ns, 160);
        assert_eq!(r.latency.max_ns, 220);
        assert_eq!(r.latency.mean_ns, 160);
        // node finishes: n0=220, n1=260, n2=220, n3=260 → skew 40.
        assert_eq!(r.node_skew_ns, 40);
        assert_eq!(r.events, 999);
    }
}
