//! Offline stub of `serde`.
//!
//! `Serialize` / `Deserialize` are marker traits so derived bounds
//! compile; nothing here can actually serialize a derived type. The one
//! escape hatch is [`Serialize::__stub_json`], which `serde_json`'s
//! `Value` overrides so that `json!`-built values still print. Workspace
//! crates that persist data use hand-rolled JSON instead.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {
    /// Stub hook: a compact JSON rendering, if this type knows how to
    /// produce one. Derived impls keep the default (`None`), which makes
    /// `serde_json::to_string` fail at runtime rather than silently
    /// emitting garbage.
    #[doc(hidden)]
    fn __stub_json(&self) -> Option<String> {
        None
    }
}

pub trait Deserialize<'de>: Sized {}

// Container and primitive impls so generic `T: Serialize` bounds hold
// for composite values, as with the real serde. All keep the default
// (non-serializable) stub hook.
macro_rules! stub_serialize {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {})*
    };
}
stub_serialize!(
    (), bool, char, str, String,
    u8, u16, u32, u64, u128, usize,
    i8, i16, i32, i64, i128, isize,
    f32, f64
);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __stub_json(&self) -> Option<String> {
        (**self).__stub_json()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn __stub_json(&self) -> Option<String> {
        (**self).__stub_json()
    }
}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}

macro_rules! stub_deserialize {
    ($($t:ty),* $(,)?) => {
        $(impl<'de> Deserialize<'de> for $t {})*
    };
}
stub_deserialize!(
    (), bool, char, String,
    u8, u16, u32, u64, u128, usize,
    i8, i16, i32, i64, i128, isize,
    f32, f64
);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

pub mod de {
    /// Mirror of `serde::de::DeserializeOwned` for API compatibility.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

pub mod ser {
    pub use crate::Serialize;
}
