/root/repo/target/debug/deps/bench-1b982a38e9efac99.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/debug/deps/libbench-1b982a38e9efac99.rlib: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/debug/deps/libbench-1b982a38e9efac99.rmeta: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
