/root/repo/target/debug/deps/ibfat_repro-e89deec52b1ee180.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_repro-e89deec52b1ee180.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
