/root/repo/target/debug/deps/bench-4f6c59ce6eb763bc.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libbench-4f6c59ce6eb763bc.rmeta: crates/bench/src/lib.rs crates/bench/src/trajectory.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
