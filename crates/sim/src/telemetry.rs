//! Engine self-telemetry for the parallel simulator.
//!
//! The flight recorder and the fabric counters describe the *simulated*
//! fabric; this module describes the *engine*: how the conservative
//! window synchronization actually behaved — chosen window sizes,
//! barrier wait time, mailbox message volume, and per-shard event
//! imbalance. ROADMAP item 3's optimization work reads these numbers
//! instead of guessing.
//!
//! Telemetry is collected only when requested
//! ([`ParSimulator::run_telemetry`](crate::ParSimulator::run_telemetry)
//! or `with_telemetry(true)`), so the plain parallel path pays nothing.
//! It is a *separate channel* from the simulation itself: the report
//! stays bit-identical with telemetry on or off, but the telemetry is
//! inherently host-dependent (barrier waits are wall-clock) and
//! schedule-shaped (per-shard counts depend on the partition), so it is
//! never compared across runs in determinism tests — only the
//! structural counts (windows, events, messages) are reproducible for
//! a fixed thread count.

use crate::json::JsonBuf;

/// Per-shard window-log bound: the first this many windows are kept in
/// full; later ones only feed the aggregates (and are counted in
/// [`ShardTelemetry::window_log_dropped`]).
pub const WINDOW_LOG_CAP: usize = 512;

/// One synchronization window as one shard saw it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowRecord {
    /// The window's end bound (simulated ns).
    pub bound_ns: u64,
    /// The window's span — the adaptive policy's chosen size (ns).
    pub span_ns: u64,
    /// Events this shard dispatched inside the window.
    pub events: u64,
    /// Cross-shard messages this shard published at the window end.
    pub msgs_sent: u64,
    /// Cross-shard messages this shard drained at the window start.
    pub msgs_recv: u64,
    /// Wall-clock ns this shard spent parked at the window barrier.
    pub barrier_wait_ns: u64,
    /// Wall-clock ns the window's bridge exchange took (multi-process
    /// driver only; 0 under the in-process engine, whose lanes have no
    /// exchange step distinct from the barrier).
    pub bridge_wait_ns: u64,
}

/// Everything one shard recorded over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardTelemetry {
    pub shard: u32,
    /// Switches this shard owns.
    pub switches: u32,
    /// End nodes this shard owns.
    pub nodes: u32,
    /// Barrier rounds participated in.
    pub windows: u64,
    /// Rounds the empty-window fast path skipped dispatch entirely.
    pub skipped_windows: u64,
    /// Events dispatched.
    pub events: u64,
    /// Cross-shard messages published.
    pub msgs_sent: u64,
    /// Cross-shard messages drained.
    pub msgs_recv: u64,
    /// Total wall-clock ns parked at window barriers.
    pub barrier_wait_ns: u64,
    /// Total wall-clock ns spent in bridge exchanges (multi-process
    /// driver only; 0 in-process).
    pub bridge_wait_ns: u64,
    /// Bytes this shard's cross-process messages serialized to on the
    /// bridge (0 in-process, and for shards whose cut neighbors all
    /// live in the same worker).
    pub bridge_bytes: u64,
    /// Bridge exchanges this shard's worker participated in (one per
    /// window under the multi-process driver; 0 in-process).
    pub bridge_flushes: u64,
    /// Sum of window spans (ns) — `span_sum_ns / windows` is the mean
    /// chosen window size.
    pub span_sum_ns: u64,
    /// Largest single window span (ns).
    pub span_max_ns: u64,
    /// The first [`WINDOW_LOG_CAP`] windows, in order.
    pub window_log: Vec<WindowRecord>,
    /// Windows beyond the log cap (aggregates still include them).
    pub window_log_dropped: u64,
}

impl ShardTelemetry {
    pub fn new(shard: u32, switches: u32, nodes: u32) -> ShardTelemetry {
        ShardTelemetry {
            shard,
            switches,
            nodes,
            ..ShardTelemetry::default()
        }
    }

    /// Fold one finished window in.
    pub(crate) fn on_window(&mut self, rec: WindowRecord, dispatched: bool) {
        self.windows += 1;
        if !dispatched {
            self.skipped_windows += 1;
        }
        self.events += rec.events;
        self.msgs_sent += rec.msgs_sent;
        self.msgs_recv += rec.msgs_recv;
        self.barrier_wait_ns += rec.barrier_wait_ns;
        self.bridge_wait_ns += rec.bridge_wait_ns;
        self.span_sum_ns += rec.span_ns;
        self.span_max_ns = self.span_max_ns.max(rec.span_ns);
        if self.window_log.len() < WINDOW_LOG_CAP {
            self.window_log.push(rec);
        } else {
            self.window_log_dropped += 1;
        }
    }

    /// Mean chosen window size (ns); 0 before any window completed.
    pub fn mean_window_ns(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.span_sum_ns as f64 / self.windows as f64
        }
    }
}

/// The whole engine's telemetry for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTelemetry {
    /// Effective worker count (1 = the sequential fallback ran; no
    /// shard records exist in that case).
    pub threads: usize,
    /// The static lookahead `W` (ns) windows advance in multiples of.
    pub lookahead_ns: u64,
    /// Switch-to-switch cables cut by the shard partition.
    pub edge_cut: usize,
    /// One record per shard (empty for a sequential run).
    pub shards: Vec<ShardTelemetry>,
}

impl EngineTelemetry {
    /// The marker telemetry of a run that fell back to the sequential
    /// engine.
    pub fn sequential(lookahead_ns: u64) -> EngineTelemetry {
        EngineTelemetry {
            threads: 1,
            lookahead_ns,
            edge_cut: 0,
            shards: Vec::new(),
        }
    }

    /// Barrier rounds (identical on every shard by construction; 0 for
    /// a sequential run).
    pub fn windows(&self) -> u64 {
        self.shards.iter().map(|s| s.windows).max().unwrap_or(0)
    }

    /// Events dispatched across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Cross-shard messages published across all shards.
    pub fn total_msgs(&self) -> u64 {
        self.shards.iter().map(|s| s.msgs_sent).sum()
    }

    /// Total wall-clock ns spent at window barriers, summed over shards.
    pub fn barrier_wait_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.barrier_wait_ns).sum()
    }

    /// Load imbalance: the busiest shard's event count over the mean
    /// (1.0 = perfectly balanced; 1.0 for sequential runs too).
    pub fn event_imbalance(&self) -> f64 {
        if self.shards.is_empty() {
            return 1.0;
        }
        let max = self.shards.iter().map(|s| s.events).max().unwrap_or(0) as f64;
        let mean = self.total_events() as f64 / self.shards.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// One-object JSON summary (single line, no trailing newline).
    pub fn summary_json(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        self.write_summary_fields(&mut j);
        j.end_obj();
        j.into_string()
    }

    fn write_summary_fields(&self, j: &mut JsonBuf) {
        j.field_str("record", "engine");
        j.field_u64("threads", self.threads as u64);
        j.field_u64("lookahead_ns", self.lookahead_ns);
        j.field_u64("edge_cut", self.edge_cut as u64);
        j.field_u64("windows", self.windows());
        j.field_u64("events", self.total_events());
        j.field_u64("msgs", self.total_msgs());
        j.field_u64("barrier_wait_ns", self.barrier_wait_ns());
        j.field_f64("event_imbalance", self.event_imbalance(), 4);
    }

    /// The full JSONL document: one `engine` summary line, one `shard`
    /// line per shard, and — when `include_windows` — one `window` line
    /// per logged window. Every line is one standalone JSON object.
    pub fn to_jsonl(&self, include_windows: bool) -> String {
        let mut out = self.summary_json();
        out.push('\n');
        for s in &self.shards {
            let mut j = JsonBuf::new();
            j.begin_obj();
            j.field_str("record", "shard");
            j.field_u64("shard", u64::from(s.shard));
            j.field_u64("switches", u64::from(s.switches));
            j.field_u64("nodes", u64::from(s.nodes));
            j.field_u64("windows", s.windows);
            j.field_u64("skipped_windows", s.skipped_windows);
            j.field_u64("events", s.events);
            j.field_u64("msgs_sent", s.msgs_sent);
            j.field_u64("msgs_recv", s.msgs_recv);
            j.field_u64("barrier_wait_ns", s.barrier_wait_ns);
            j.field_u64("bridge_wait_ns", s.bridge_wait_ns);
            j.field_u64("bridge_bytes", s.bridge_bytes);
            j.field_u64("bridge_flushes", s.bridge_flushes);
            j.field_f64("mean_window_ns", s.mean_window_ns(), 1);
            j.field_u64("max_window_ns", s.span_max_ns);
            j.field_u64("window_log_dropped", s.window_log_dropped);
            j.end_obj();
            out.push_str(&j.into_string());
            out.push('\n');
            if include_windows {
                for w in &s.window_log {
                    let mut j = JsonBuf::new();
                    j.begin_obj();
                    j.field_str("record", "window");
                    j.field_u64("shard", u64::from(s.shard));
                    j.field_u64("bound_ns", w.bound_ns);
                    j.field_u64("span_ns", w.span_ns);
                    j.field_u64("events", w.events);
                    j.field_u64("msgs_sent", w.msgs_sent);
                    j.field_u64("msgs_recv", w.msgs_recv);
                    j.field_u64("barrier_wait_ns", w.barrier_wait_ns);
                    j.field_u64("bridge_wait_ns", w.bridge_wait_ns);
                    j.end_obj();
                    out.push_str(&j.into_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard_with(events: u64) -> ShardTelemetry {
        let mut s = ShardTelemetry::new(0, 2, 8);
        s.on_window(
            WindowRecord {
                bound_ns: 100,
                span_ns: 100,
                events,
                msgs_sent: 3,
                msgs_recv: 1,
                barrier_wait_ns: 50,
                bridge_wait_ns: 0,
            },
            events > 0,
        );
        s
    }

    #[test]
    fn aggregates_fold_windows() {
        let mut s = ShardTelemetry::new(1, 2, 8);
        s.on_window(
            WindowRecord {
                bound_ns: 100,
                span_ns: 100,
                events: 10,
                msgs_sent: 2,
                msgs_recv: 0,
                barrier_wait_ns: 5,
                bridge_wait_ns: 0,
            },
            true,
        );
        s.on_window(
            WindowRecord {
                bound_ns: 400,
                span_ns: 300,
                events: 0,
                msgs_sent: 0,
                msgs_recv: 0,
                barrier_wait_ns: 7,
                bridge_wait_ns: 0,
            },
            false,
        );
        assert_eq!(s.windows, 2);
        assert_eq!(s.skipped_windows, 1);
        assert_eq!(s.events, 10);
        assert_eq!(s.span_max_ns, 300);
        assert!((s.mean_window_ns() - 200.0).abs() < 1e-9);
        assert_eq!(s.window_log.len(), 2);
    }

    #[test]
    fn window_log_is_bounded() {
        let mut s = ShardTelemetry::new(0, 1, 4);
        for i in 0..(WINDOW_LOG_CAP as u64 + 10) {
            s.on_window(
                WindowRecord {
                    bound_ns: i,
                    span_ns: 1,
                    ..WindowRecord::default()
                },
                true,
            );
        }
        assert_eq!(s.window_log.len(), WINDOW_LOG_CAP);
        assert_eq!(s.window_log_dropped, 10);
        assert_eq!(s.windows, WINDOW_LOG_CAP as u64 + 10);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        let mut e = EngineTelemetry {
            threads: 2,
            lookahead_ns: 100,
            edge_cut: 4,
            shards: vec![shard_with(30), shard_with(10)],
        };
        e.shards[1].shard = 1;
        assert!((e.event_imbalance() - 1.5).abs() < 1e-9);
        assert_eq!(e.windows(), 1);
        assert_eq!(e.total_events(), 40);
        assert_eq!(e.total_msgs(), 6);
    }

    #[test]
    fn sequential_marker_is_balanced_and_empty() {
        let e = EngineTelemetry::sequential(100);
        assert_eq!(e.threads, 1);
        assert_eq!(e.windows(), 0);
        assert!((e.event_imbalance() - 1.0).abs() < 1e-9);
        assert!(e.shards.is_empty());
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let e = EngineTelemetry {
            threads: 1,
            lookahead_ns: 100,
            edge_cut: 0,
            shards: vec![shard_with(5)],
        };
        let doc = e.to_jsonl(true);
        // engine + shard + 1 window line
        assert_eq!(doc.lines().count(), 3);
        for line in doc.lines() {
            let v = crate::json::parse(line).expect("valid JSON line");
            v.as_object("line")
                .unwrap()
                .field("record")
                .expect("tagged");
        }
        assert!(doc.starts_with("{\"record\":\"engine\""));
    }
}
