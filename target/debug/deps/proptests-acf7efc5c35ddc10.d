/root/repo/target/debug/deps/proptests-acf7efc5c35ddc10.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-acf7efc5c35ddc10.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
