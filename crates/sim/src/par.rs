//! Conservatively synchronized parallel execution of the subnet
//! simulator, bit-identical to the sequential engine.
//!
//! ## Design (bounded-lag time windows)
//!
//! The fabric is sharded by device: switches are block-partitioned by ID
//! and every end node joins its leaf switch's shard, so the only events
//! that ever cross a shard boundary are the two single-link switch-to-
//! switch interactions — `SwHeaderArrive` (a packet header crossing a
//! wire) and `CreditToSwitch` (a credit flying back). Both are scheduled
//! exactly one wire flight (`fly_time_ns`) in the future, which makes the
//! wire flight a *static lookahead* `W = SimConfig::lookahead_ns()`:
//! an event sent while a shard executes window `k` (times `[kW, (k+1)W)`)
//! can only fire inside window `k+1`. Each worker therefore dispatches
//! every local event with `t < (k+1)W`, stages its cross-shard sends into
//! per-`(src, dst)` mailboxes, and meets the others at one barrier per
//! window; the next window starts by draining the inbound mailboxes into
//! the local calendar. Mailboxes are double-buffered by window parity, so
//! a single barrier per window suffices.
//!
//! ## Determinism (the lineage key)
//!
//! The sequential engine fires same-timestamp events in *scheduling
//! order* (calendar FIFO). To reproduce that order without a global
//! calendar, every scheduled event carries an [`EvKey`] — a node in a
//! shared lineage tree — and each shard dispatches its per-timestamp
//! cohort in key order. A key holds:
//!
//! 1. `sched` — the simulation time of the scheduling call. FIFO pops
//!    earlier-scheduled events first; so does the key.
//! 2. `parent` — the key of the event whose dispatch made the call
//!    (`None` for the pre-loop priming injections, which sequential FIFO
//!    pops before anything a dispatch scheduled at the same instant).
//!    Among events scheduled at the same instant by different dispatches,
//!    the sequential order is the dispatch order of those parents — which
//!    (inductively) is the parents' key order — so comparison recurses
//!    into the lineage.
//! 3. `tb` — `(device class, device id, per-device schedule counter)` of
//!    the scheduling call. Two calls from the same dispatch compare by
//!    counter: exactly their program order.
//!
//! The comparison is *exact*, and cheap: two distinct events with a
//! common parent always differ in `tb` (same device, distinct counter
//! values), so the lineage walk stops at the first level where the two
//! ancestries either merge (one shared `Arc`) or diverge in `sched` —
//! no unbounded tie falls through. Lineage nodes are reference-counted
//! and shared; the retained set is dominated by each node's injection
//! chain (one node per generated packet), a few dozen bytes per packet.
//!
//! Zero-delay events (scheduled at the instant being dispatched) never
//! enter the calendar at all: sequential FIFO guarantees they pop after
//! everything already pending at that instant, in schedule order, so the
//! driver appends them to the tail of the running cohort unsorted —
//! exact by construction.
//!
//! ## Injection pre-pass
//!
//! The only RNG consumers in the engine are the injection-side draws
//! (traffic pattern, DLID/VL selection, Poisson inter-arrivals), and the
//! relative order of `Inject` dispatches is independent of fabric events.
//! A sequential pre-pass replays exactly the injection subsequence —
//! priming every node in node order, then popping a `(time, insertion
//! seq)` heap and calling the same `draw_injection` the sequential
//! engine uses — producing per-node scripts of pre-drawn injections.
//! Shards consume their nodes' scripts instead of touching the RNG, so
//! the random stream order is the sequential one by construction; flight-
//! recorder slots and flow sequence numbers are assigned globally in the
//! pre-pass for the same reason.
//!
//! ## Merging
//!
//! Shard reports merge exactly: window counters, latency histograms and
//! per-device busy times are disjoint sums; `in_flight_at_end` uses the
//! slab identity `generated − delivered − dropped` (a packet mid-flight
//! across a shard boundary at the end of the run lives in a mailbox, not
//! a slab); traces concatenate per slot and sort by time (two same-time
//! events of one packet can never sit in different shards, because a
//! crossing costs a full wire flight). Probes fork one child per shard
//! and absorb commutatively at the end ([`ParProbe`]).

use crate::engine::{EventQueue, Time};
use crate::metrics::{LatencyStats, SimReport};
use crate::packet::Packet;
use crate::probe::{NoopProbe, ParProbe, Probe};
use crate::sim::{Ev, InjectRec, Sched, Simulator};
use crate::trace::PacketTrace;
use crate::{SimConfig, TrafficPattern};
use ibfat_routing::Routing;
use ibfat_topology::{DeviceRef, Network, NodeId, PortNum};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// Deterministic tiebreak key for same-timestamp events: one node of the
/// shared lineage tree (see the module docs). Compared with [`cmp_key`].
#[derive(Debug)]
struct EvKey {
    /// Simulation time of the scheduling call.
    sched: Time,
    /// `class << 63 | device id << 32 | per-device schedule counter`.
    tb: u64,
    /// The event whose dispatch made the scheduling call; `None` for the
    /// pre-loop priming injections.
    parent: Option<Arc<EvKey>>,
}

impl EvKey {
    /// Key of a pre-loop priming event (the initial `Inject` per node):
    /// rootless, so it sorts before any dispatched event's children at
    /// the same instant, and node order matches the sequential priming
    /// loop's insertion order.
    fn initial(node: u32) -> Arc<EvKey> {
        EvKey::initial_seq(node, 0)
    }

    /// Key of the `seq`-th priming event of a node. Workload mode primes
    /// one `WlArm` per DAG root, and a node can own several roots; the
    /// sequential engine primes them node-major in ascending id order,
    /// which `(node, seq)` in the tiebreak word reproduces exactly.
    fn initial_seq(node: u32, seq: u32) -> Arc<EvKey> {
        Arc::new(EvKey {
            sched: 0,
            tb: (u64::from(node) << 32) | u64::from(seq),
            parent: None,
        })
    }
}

/// Total order over lineage keys, equal to the sequential engine's FIFO
/// order for same-timestamp events: `sched` first, then the parents'
/// order (recursively), then the per-dispatch call counter.
///
/// The walk is iterative and terminates at the first level where the two
/// ancestries merge (shared `Arc` or both roots) or diverge in `sched`:
/// two distinct events sharing a parent always differ in `tb` (same
/// device, distinct counter values), so once the parents are *the same
/// event* this level's `tb` decides. Distinct events never compare equal.
fn cmp_key(a: &Arc<EvKey>, b: &Arc<EvKey>) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    let (mut a, mut b) = (a, b);
    loop {
        match a.sched.cmp(&b.sched) {
            Equal => {}
            o => return o,
        }
        match (&a.parent, &b.parent) {
            (None, None) => return a.tb.cmp(&b.tb),
            (None, Some(_)) => return Less,
            (Some(_), None) => return Greater,
            (Some(pa), Some(pb)) => {
                if Arc::ptr_eq(pa, pb) {
                    return a.tb.cmp(&b.tb);
                }
                a = pa;
                b = pb;
            }
        }
    }
}

/// One keyed calendar entry.
#[derive(Debug, Clone)]
struct ParEntry {
    key: Arc<EvKey>,
    ev: Ev,
}

/// A cross-shard event in flight between windows.
struct Msg {
    at: Time,
    key: Arc<EvKey>,
    kind: MsgKind,
}

enum MsgKind {
    /// A packet header crossing the shard boundary: the packet leaves the
    /// source shard's slab and is re-inserted at the destination.
    Arrive {
        sw: u32,
        port: u8,
        vl: u8,
        packet: Packet,
        /// Flight-recorder slot (`u32::MAX` = untraced).
        trace_slot: u32,
        /// Workload message id (`u32::MAX` = pattern mode) — the side
        /// table entry travels with the packet across the slab transfer.
        wl_msg: u32,
    },
    /// A credit returning across the shard boundary.
    Credit { sw: u32, port: u8, vl: u8 },
    /// Workload mode: a completion notification releasing a dependent
    /// message on another shard's node. Scheduled exactly one wire
    /// flight after the completing delivery, so it respects the same
    /// lookahead as the link events.
    Arm { node: u32, msg: u32 },
}

/// A cross-shard schedule call awaiting conversion to a [`Msg`]. The
/// packet id is resolved against the slab immediately after the dispatch
/// that produced it, before any other dispatch can recycle the slot.
struct PendingCross {
    dst: u32,
    at: Time,
    key: Arc<EvKey>,
    ev: Ev,
}

/// Device-to-shard assignment: switches block-partitioned by ID, nodes
/// co-located with their leaf switch (so node-side events never cross).
struct ShardMap {
    sw: Vec<u32>,
    node: Vec<u32>,
}

impl ShardMap {
    fn build(net: &Network, shards: usize) -> ShardMap {
        let n_sw = net.num_switches();
        let sw: Vec<u32> = (0..n_sw).map(|s| (s * shards / n_sw) as u32).collect();
        let node = (0..net.num_nodes())
            .map(|n| {
                match net.peer_of(DeviceRef::Node(NodeId(n as u32)), PortNum(1)) {
                    Some(p) => match p.device {
                        DeviceRef::Switch(s) => sw[s.0 as usize],
                        DeviceRef::Node(_) => unreachable!("endports attach to switches"),
                    },
                    // Isolated nodes never source or sink events.
                    None => 0,
                }
            })
            .collect();
        ShardMap { sw, node }
    }
}

/// `(tb prefix, per-device counter index)` of the device whose handler
/// is dispatching — the target device of the event being dispatched.
fn scheduling_dev(ev: &Ev, num_nodes: u32) -> (u64, u32) {
    match *ev {
        Ev::Inject { node }
        | Ev::TryNodeSend { node }
        | Ev::CreditToNode { node, .. }
        | Ev::Deliver { node, .. }
        | Ev::WlArm { node, .. } => (u64::from(node) << 32, node),
        Ev::SwHeaderArrive { sw, .. }
        | Ev::SwRouteDone { sw, .. }
        | Ev::SwInputDeparted { sw, .. }
        | Ev::SwTryOutput { sw, .. }
        | Ev::SwOutputDeparted { sw, .. }
        | Ev::CreditToSwitch { sw, .. }
        | Ev::SwDiscardDone { sw, .. } => ((1 << 63) | (u64::from(sw) << 32), num_nodes + sw),
    }
}

/// The parallel engine's scheduler seam: handlers schedule through this
/// (via [`Sched`]) exactly as they do through the sequential calendar;
/// the queue keys each event, routes local ones into the shard's wheel
/// (or the running cohort, for zero-delay events) and stages cross-shard
/// ones for the window-end mailbox flush.
pub struct ShardQueue {
    me: u32,
    map: Arc<ShardMap>,
    num_nodes: u32,
    lookahead: u64,
    cal: EventQueue<ParEntry>,
    /// Per-device schedule-call counters (nodes, then switches).
    seq: Vec<u32>,
    // --- context of the dispatch in progress, set by the driver ---
    cur_time: Time,
    parent_key: Arc<EvKey>,
    cur_tb_base: u64,
    cur_seq_idx: u32,
    /// Zero-delay events: appended to the running cohort in schedule
    /// order (exact sequential FIFO), never key-sorted.
    same_time: Vec<ParEntry>,
    /// Cross-shard sends of the dispatch in progress.
    pending: Vec<PendingCross>,
}

impl ShardQueue {
    fn new(me: u32, map: Arc<ShardMap>, cfg: &SimConfig) -> ShardQueue {
        let num_nodes = map.node.len() as u32;
        let num_sw = map.sw.len() as u32;
        ShardQueue {
            me,
            map,
            num_nodes,
            lookahead: cfg.lookahead_ns(),
            cal: EventQueue::with_kind(cfg.calendar),
            seq: vec![0; (num_nodes + num_sw) as usize],
            cur_time: 0,
            parent_key: EvKey::initial(0),
            cur_tb_base: 0,
            cur_seq_idx: 0,
            same_time: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn begin_dispatch(&mut self, t: Time, key: Arc<EvKey>, ev: &Ev) {
        self.cur_time = t;
        self.parent_key = key;
        let (tb_base, seq_idx) = scheduling_dev(ev, self.num_nodes);
        self.cur_tb_base = tb_base;
        self.cur_seq_idx = seq_idx;
    }

    fn dst_shard(&self, ev: &Ev) -> u32 {
        match *ev {
            Ev::Inject { node }
            | Ev::TryNodeSend { node }
            | Ev::CreditToNode { node, .. }
            | Ev::Deliver { node, .. }
            | Ev::WlArm { node, .. } => self.map.node[node as usize],
            Ev::SwHeaderArrive { sw, .. }
            | Ev::SwRouteDone { sw, .. }
            | Ev::SwInputDeparted { sw, .. }
            | Ev::SwTryOutput { sw, .. }
            | Ev::SwOutputDeparted { sw, .. }
            | Ev::CreditToSwitch { sw, .. }
            | Ev::SwDiscardDone { sw, .. } => self.map.sw[sw as usize],
        }
    }
}

impl Sched for ShardQueue {
    fn schedule(&mut self, at: Time, ev: Ev) {
        let seq = self.seq[self.cur_seq_idx as usize];
        self.seq[self.cur_seq_idx as usize] = seq.wrapping_add(1);
        let key = Arc::new(EvKey {
            sched: self.cur_time,
            tb: self.cur_tb_base | u64::from(seq),
            parent: Some(self.parent_key.clone()),
        });
        let dst = self.dst_shard(&ev);
        if dst == self.me {
            if at == self.cur_time {
                self.same_time.push(ParEntry { key, ev });
            } else {
                debug_assert!(at > self.cur_time, "scheduled into the past");
                self.cal.schedule(at, ParEntry { key, ev });
            }
        } else {
            debug_assert!(
                matches!(
                    ev,
                    Ev::SwHeaderArrive { .. } | Ev::CreditToSwitch { .. } | Ev::WlArm { .. }
                ),
                "only single-link and completion-notification events may cross shards"
            );
            debug_assert!(
                at >= self.cur_time + self.lookahead,
                "cross-shard event violates the lookahead"
            );
            self.pending.push(PendingCross { dst, at, key, ev });
        }
    }
}

/// Sequential replay of exactly the injection subsequence: produces the
/// per-node scripts of pre-drawn injections (identical RNG order to the
/// sequential run) plus the globally assigned flight-recorder headers.
fn injection_prepass(
    net: &Network,
    routing: &Routing,
    cfg: &SimConfig,
    pattern: &TrafficPattern,
    offered_load: f64,
    sim_time_ns: Time,
    warmup_ns: Time,
) -> (Vec<VecDeque<InjectRec>>, Vec<PacketTrace>) {
    let mut gen = Simulator::new(
        net,
        routing,
        cfg.clone(),
        pattern.clone(),
        offered_load,
        sim_time_ns,
        warmup_ns,
    );
    let n = gen.nodes.len();
    let mut scripts: Vec<VecDeque<InjectRec>> = (0..n).map(|_| VecDeque::new()).collect();
    // `(time, insertion seq, node)`: pops in exactly the order the
    // sequential calendar fires the Inject subsequence (FIFO preserves
    // the relative order of any subsequence of insertions).
    let mut heap: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for node in 0..n as u32 {
        if !gen.nodes[node as usize].active {
            continue;
        }
        let phase = gen.rng.gen_range(0.0..gen.interarrival_ns);
        gen.nodes[node as usize].next_gen = phase;
        heap.push(Reverse((phase as Time, seq, node)));
        seq += 1;
    }
    while let Some(Reverse((t, _, node))) = heap.pop() {
        if t >= sim_time_ns {
            break; // time-ordered pops: nothing later fires either
        }
        gen.now = t;
        let (payload, next_at) = gen.draw_injection(node);
        scripts[node as usize].push_back(InjectRec { at: t, payload });
        if let Some(at) = next_at {
            heap.push(Reverse((at, seq, node)));
            seq += 1;
        }
    }
    (scripts, gen.traces)
}

/// Drain this shard's inbound mailboxes for window `k` (parity side):
/// every message sent during window `k-1` fires inside this window.
fn drain_inbound<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    me: usize,
    k: u64,
    w: u64,
    parity: usize,
    mailboxes: &[Vec<[Mutex<Vec<Msg>>; 2]>],
) {
    for (src, from_src) in mailboxes.iter().enumerate() {
        if src == me {
            continue;
        }
        let msgs = std::mem::take(&mut *from_src[me][parity].lock().expect("mailbox poisoned"));
        for msg in msgs {
            debug_assert!(k * w <= msg.at && msg.at < (k + 1).saturating_mul(w));
            let ev = match msg.kind {
                MsgKind::Arrive {
                    sw,
                    port,
                    vl,
                    packet,
                    trace_slot,
                    wl_msg,
                } => {
                    let pkt = sim.slab.insert(packet);
                    sim.set_trace_slot(pkt, trace_slot);
                    if wl_msg != u32::MAX {
                        sim.wl_set_msg(pkt, wl_msg);
                    }
                    Ev::SwHeaderArrive { sw, port, vl, pkt }
                }
                MsgKind::Credit { sw, port, vl } => Ev::CreditToSwitch { sw, port, vl },
                MsgKind::Arm { node, msg } => Ev::WlArm { node, msg },
            };
            sim.queue
                .cal
                .schedule(msg.at, ParEntry { key: msg.key, ev });
        }
    }
}

/// Dispatch everything strictly before `bound`, one timestamp cohort at
/// a time, in key order; cross-shard sends are staged into `outbox`.
fn dispatch_window<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    bound: Time,
    cohort: &mut Vec<ParEntry>,
    outbox: &mut [Vec<Msg>],
) {
    while let Some(t) = sim.queue.cal.peek_time() {
        if t >= bound {
            break;
        }
        cohort.clear();
        while sim.queue.cal.peek_time() == Some(t) {
            let (_, e) = sim.queue.cal.pop().expect("peeked nonempty");
            cohort.push(e);
        }
        cohort.sort_unstable_by(|a, b| cmp_key(&a.key, &b.key));
        let mut i = 0;
        while i < cohort.len() {
            let entry = cohort[i].clone();
            debug_assert!(t >= sim.now, "time went backwards");
            sim.now = t;
            sim.events_processed += 1;
            sim.queue.begin_dispatch(t, entry.key, &entry.ev);
            if P::COUNTERS {
                sim.probe.tick(t, sim.slab.live());
            }
            if P::TIMING {
                let phase = crate::sim::phase_of(&entry.ev);
                let t0 = std::time::Instant::now();
                sim.dispatch(entry.ev);
                sim.probe.phase_time(phase, t0.elapsed().as_nanos() as u64);
            } else {
                sim.dispatch(entry.ev);
            }
            // Zero-delay events join the cohort tail in schedule
            // order — the exact sequential FIFO position.
            cohort.append(&mut sim.queue.same_time);
            // Convert cross-shard sends while their packet ids are
            // still fresh (no later dispatch may recycle the slot).
            let tracing = sim.cfg.trace_first_packets > 0;
            for pc in sim.queue.pending.drain(..) {
                let kind = match pc.ev {
                    Ev::SwHeaderArrive { sw, port, vl, pkt } => {
                        let trace_slot = if tracing {
                            sim.trace_slots
                                .get(pkt as usize)
                                .copied()
                                .unwrap_or(u32::MAX)
                        } else {
                            u32::MAX
                        };
                        let wl_msg = match sim.wl.as_deref() {
                            Some(w) => w.wl_msg[pkt as usize],
                            None => u32::MAX,
                        };
                        MsgKind::Arrive {
                            sw,
                            port,
                            vl,
                            packet: sim.slab.remove(pkt),
                            trace_slot,
                            wl_msg,
                        }
                    }
                    Ev::CreditToSwitch { sw, port, vl } => MsgKind::Credit { sw, port, vl },
                    Ev::WlArm { node, msg } => MsgKind::Arm { node, msg },
                    _ => unreachable!("non-crossing event staged as cross-shard"),
                };
                outbox[pc.dst as usize].push(Msg {
                    at: pc.at,
                    key: pc.key,
                    kind,
                });
            }
            i += 1;
        }
    }
}

/// Flush the window's cross-shard sends into the opposite-parity
/// mailboxes; returns whether anything was sent (the shard's "the
/// system is still alive" vote in workload mode).
fn flush_outbox(
    me: usize,
    parity: usize,
    outbox: &mut [Vec<Msg>],
    mailboxes: &[Vec<[Mutex<Vec<Msg>>; 2]>],
) -> bool {
    let mut sent = false;
    for (dst, staged) in outbox.iter_mut().enumerate() {
        if staged.is_empty() {
            continue;
        }
        sent = true;
        mailboxes[me][dst][parity ^ 1]
            .lock()
            .expect("mailbox poisoned")
            .append(staged);
    }
    sent
}

/// One worker: drain inbound mailboxes, dispatch the window, flush
/// outbound mailboxes, barrier; repeat until the horizon.
fn run_shard<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    me: usize,
    shards: usize,
    mailboxes: &[Vec<[Mutex<Vec<Msg>>; 2]>],
    barrier: &Barrier,
    last_now: &AtomicU64,
) {
    let w = sim.cfg.lookahead_ns();
    let sim_time = sim.sim_time_ns;
    let windows = sim_time.div_ceil(w);
    let mut cohort: Vec<ParEntry> = Vec::new();
    let mut outbox: Vec<Vec<Msg>> = (0..shards).map(|_| Vec::new()).collect();
    for k in 0..windows {
        let parity = (k & 1) as usize;
        let bound = (k + 1).saturating_mul(w).min(sim_time);
        drain_inbound(sim, me, k, w, parity, mailboxes);
        dispatch_window(sim, bound, &mut cohort, &mut outbox);
        flush_outbox(me, parity, &mut outbox, mailboxes);
        barrier.wait();
    }
    finish_shard(sim, barrier, last_now);
}

/// One workload worker: the same window machinery, but run until global
/// quiescence instead of a horizon. Each window every shard votes
/// whether it can still make progress (nonempty calendar) or has put
/// progress in flight (flushed mailbox messages); the votes live in
/// parity-indexed slots written before the window barrier and read
/// after it, so every shard sees the same unanimous-idle verdict and
/// breaks in the same window.
fn run_shard_workload<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    me: usize,
    shards: usize,
    mailboxes: &[Vec<[Mutex<Vec<Msg>>; 2]>],
    barrier: &Barrier,
    last_now: &AtomicU64,
    alive: &[[AtomicBool; 2]],
) {
    let w = sim.cfg.lookahead_ns();
    let mut cohort: Vec<ParEntry> = Vec::new();
    let mut outbox: Vec<Vec<Msg>> = (0..shards).map(|_| Vec::new()).collect();
    let mut k = 0u64;
    loop {
        let parity = (k & 1) as usize;
        let bound = (k + 1).saturating_mul(w);
        drain_inbound(sim, me, k, w, parity, mailboxes);
        dispatch_window(sim, bound, &mut cohort, &mut outbox);
        let sent = flush_outbox(me, parity, &mut outbox, mailboxes);
        let more = sent || sim.queue.cal.peek_time().is_some();
        alive[me][parity ^ 1].store(more, Ordering::SeqCst);
        barrier.wait();
        if !alive.iter().any(|a| a[parity ^ 1].load(Ordering::SeqCst)) {
            break;
        }
        k += 1;
    }
    finish_shard(sim, barrier, last_now);
}

/// Agree on the global last dispatch time, then close out the probe
/// exactly as the sequential engine's `finish` does.
fn finish_shard<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    barrier: &Barrier,
    last_now: &AtomicU64,
) {
    last_now.fetch_max(sim.now, Ordering::SeqCst);
    barrier.wait();
    if P::COUNTERS || P::TIMING {
        let end = last_now.load(Ordering::SeqCst);
        sim.probe.finish(end);
    }
}

/// The parallel discrete-event engine: same inputs, same report, N
/// worker threads (see the module docs). `threads <= 1`, a zero
/// lookahead, or a single-switch fabric fall back to the sequential
/// [`Simulator`] — byte-identical by definition.
///
/// ```
/// use ibfat_topology::{Network, TreeParams};
/// use ibfat_routing::{Routing, RoutingKind};
/// use ibfat_sim::{ParSimulator, SimConfig, Simulator, TrafficPattern};
///
/// let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
/// let routing = Routing::build(&net, RoutingKind::Mlid);
/// let cfg = SimConfig::paper(2);
/// let par = ParSimulator::new(
///     &net, &routing, cfg.clone(), TrafficPattern::Uniform, 0.3, 50_000, 0, 2,
/// );
/// let seq = Simulator::new(
///     &net, &routing, cfg, TrafficPattern::Uniform, 0.3, 50_000, 0,
/// );
/// let mut par_report = par.run();
/// let mut seq_report = seq.run();
/// // Wall-clock throughput is the only nondeterministic field.
/// par_report.events_per_sec = 0.0;
/// seq_report.events_per_sec = 0.0;
/// assert_eq!(par_report, seq_report);
/// ```
pub struct ParSimulator<'a, P: ParProbe = NoopProbe> {
    net: &'a Network,
    routing: &'a Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    offered_load: f64,
    sim_time_ns: Time,
    warmup_ns: Time,
    threads: usize,
    probe: P,
}

impl<'a> ParSimulator<'a> {
    /// An unprobed parallel simulator over `threads` workers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
        threads: usize,
    ) -> ParSimulator<'a> {
        ParSimulator::with_probe(
            net,
            routing,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            threads,
            NoopProbe,
        )
    }

    /// An unprobed parallel workload driver: same sharding and window
    /// discipline as [`ParSimulator::new`], but runs a message DAG to
    /// completion instead of a wall-clock horizon (see
    /// [`run_workload`](ParSimulator::run_workload)).
    pub fn for_workload(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        threads: usize,
    ) -> ParSimulator<'a> {
        ParSimulator::with_probe(
            net,
            routing,
            cfg,
            TrafficPattern::Uniform, // unused: workload mode never samples
            1.0,
            crate::workload::WL_HORIZON,
            0,
            threads,
            NoopProbe,
        )
    }
}

impl<'a, P: ParProbe> ParSimulator<'a, P> {
    /// A parallel simulator observed by `probe`; the probe forks one
    /// child per shard and absorbs them at the end (see [`ParProbe`]).
    #[allow(clippy::too_many_arguments)]
    pub fn with_probe(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
        threads: usize,
        probe: P,
    ) -> ParSimulator<'a, P> {
        ParSimulator {
            net,
            routing,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            threads,
            probe,
        }
    }

    /// Worker count after feasibility clamps (1 = sequential fallback).
    pub fn effective_threads(&self) -> usize {
        if self.cfg.lookahead_ns() == 0 || self.net.num_switches() < 2 {
            return 1;
        }
        self.threads.clamp(1, self.net.num_switches())
    }

    /// Run to completion and produce the report.
    pub fn run(self) -> SimReport {
        self.run_observed().0
    }

    /// Run to completion; return the report and the merged probe.
    pub fn run_observed(self) -> (SimReport, P) {
        let shards = self.effective_threads();
        if shards <= 1 {
            return Simulator::with_probe(
                self.net,
                self.routing,
                self.cfg,
                self.pattern,
                self.offered_load,
                self.sim_time_ns,
                self.warmup_ns,
                self.probe,
            )
            .run_observed();
        }
        let wall_start = std::time::Instant::now();
        let (mut scripts, gen_traces) = injection_prepass(
            self.net,
            self.routing,
            &self.cfg,
            &self.pattern,
            self.offered_load,
            self.sim_time_ns,
            self.warmup_ns,
        );
        let map = Arc::new(ShardMap::build(self.net, shards));
        let num_nodes = self.net.num_nodes();

        let mut sims: Vec<Simulator<'a, P, ShardQueue>> = Vec::with_capacity(shards);
        for me in 0..shards as u32 {
            let queue = ShardQueue::new(me, map.clone(), &self.cfg);
            let mut sim = Simulator::with_queue(
                self.net,
                self.routing,
                self.cfg.clone(),
                self.pattern.clone(),
                self.offered_load,
                self.sim_time_ns,
                self.warmup_ns,
                queue,
                self.probe.fork(),
            );
            sim.traces = gen_traces.clone();
            let mut script: Vec<VecDeque<InjectRec>> =
                (0..num_nodes).map(|_| VecDeque::new()).collect();
            for node in 0..num_nodes {
                if map.node[node] == me {
                    script[node] = std::mem::take(&mut scripts[node]);
                }
            }
            for (node, s) in script.iter().enumerate() {
                if let Some(first) = s.front() {
                    sim.queue.cal.schedule(
                        first.at,
                        ParEntry {
                            key: EvKey::initial(node as u32),
                            ev: Ev::Inject { node: node as u32 },
                        },
                    );
                }
            }
            sim.scripted_inj = Some(script);
            sims.push(sim);
        }

        let mailboxes: Vec<Vec<[Mutex<Vec<Msg>>; 2]>> = (0..shards)
            .map(|_| {
                (0..shards)
                    .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                    .collect()
            })
            .collect();
        let barrier = Barrier::new(shards);
        let last_now = AtomicU64::new(0);

        let mut done: Vec<Simulator<'a, P, ShardQueue>> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let (mailboxes, barrier, last_now) = (&mailboxes, &barrier, &last_now);
            let handles: Vec<_> = sims
                .into_iter()
                .enumerate()
                .map(|(me, mut sim)| {
                    scope.spawn(move || {
                        run_shard(&mut sim, me, shards, mailboxes, barrier, last_now);
                        sim
                    })
                })
                .collect();
            for h in handles {
                done.push(h.join().expect("parallel shard worker panicked"));
            }
        });
        let wall = wall_start.elapsed().as_secs_f64();
        self.merge(done, gen_traces, wall)
    }

    /// Fold the finished shards into one report + probe, reproducing the
    /// sequential `report()` computation field by field.
    fn merge(
        self,
        shards: Vec<Simulator<'a, P, ShardQueue>>,
        gen_traces: Vec<PacketTrace>,
        wall_secs: f64,
    ) -> (SimReport, P) {
        let cfg = &self.cfg;
        let sim_time = self.sim_time_ns;
        let num_nodes = self.net.num_nodes();
        let num_sw = self.net.num_switches();
        let m = self.net.params().m() as usize;

        let mut generated = 0u64;
        let mut dropped = 0u64;
        let mut total_generated = 0u64;
        let mut total_delivered = 0u64;
        let mut delivered = 0u64;
        let mut delivered_bytes = 0u64;
        let mut events_processed = 0u64;
        let mut out_of_order = 0u64;
        let mut latency = LatencyStats::new();
        let mut network_latency = LatencyStats::new();
        let mut sw_busy = vec![0u64; num_sw * m];
        let mut node_busy = vec![0u64; num_nodes];
        for s in &shards {
            generated += s.generated_in_window;
            dropped += s.dropped;
            total_generated += s.total_generated;
            total_delivered += s.total_delivered;
            delivered += s.delivered_in_window;
            delivered_bytes += s.delivered_bytes_in_window;
            events_processed += s.events_processed;
            out_of_order += s.out_of_order;
            latency.merge(&s.latency);
            network_latency.merge(&s.network_latency);
            // Only the owning shard ever drives a device, so these sums
            // are disjoint and exact.
            for (sw, ports) in s.switches.iter().enumerate() {
                for (port, p) in ports.iter().enumerate() {
                    sw_busy[sw * m + port] += p.busy_ns;
                }
            }
            for (n, node) in s.nodes.iter().enumerate() {
                node_busy[n] += node.busy_ns;
            }
        }

        let span = sim_time as f64;
        let mut total_busy = 0u64;
        let mut max_busy = 0u64;
        for &b in sw_busy.iter().chain(node_busy.iter()) {
            total_busy += b;
            max_busy = max_busy.max(b);
        }
        let links = (sw_busy.len() + node_busy.len()) as u64;

        let link_utilization = cfg.collect_link_stats.then(|| {
            let mut out = Vec::new();
            for sw in 0..num_sw {
                for port in 0..m {
                    out.push(crate::metrics::LinkUse {
                        from: format!("S{sw}"),
                        port: port as u8 + 1,
                        utilization: sw_busy[sw * m + port] as f64 / span,
                    });
                }
            }
            for (n, &b) in node_busy.iter().enumerate() {
                out.push(crate::metrics::LinkUse {
                    from: format!("N{n}"),
                    port: 1,
                    utilization: b as f64 / span,
                });
            }
            out
        });

        let traces = (cfg.trace_first_packets > 0).then(|| {
            let mut out = gen_traces;
            for (slot, tr) in out.iter_mut().enumerate() {
                for s in &shards {
                    tr.events.extend_from_slice(&s.traces[slot].events);
                }
                // Stable by-time sort: same-time events of one packet are
                // always same-shard (a crossing costs a wire flight), so
                // per-shard append order — the dispatch order — survives.
                tr.events.sort_by_key(|e| e.0);
            }
            out
        });

        let window = (sim_time - self.warmup_ns) as f64;
        let report = SimReport {
            offered_load: self.offered_load,
            sim_time_ns: sim_time,
            warmup_ns: self.warmup_ns,
            generated,
            dropped,
            total_generated,
            total_delivered,
            delivered,
            delivered_bytes,
            // The slab identity: every generated packet stays live until
            // delivered or dropped. Summing shard slabs would miss
            // packets parked in mailboxes at the horizon.
            in_flight_at_end: total_generated - total_delivered - dropped,
            accepted_bytes_per_ns_per_node: delivered_bytes as f64 / window / num_nodes as f64,
            offered_bytes_per_ns_per_node: cfg.packet_bytes as f64
                / cfg.interarrival_ns(self.offered_load),
            latency,
            network_latency,
            events_processed,
            events_per_sec: if wall_secs > 0.0 {
                events_processed as f64 / wall_secs
            } else {
                0.0
            },
            mean_link_utilization: total_busy as f64 / (links as f64 * span),
            max_link_utilization: max_busy as f64 / span,
            link_utilization,
            traces,
            out_of_order,
        };

        let mut probe = self.probe;
        for s in shards {
            probe.absorb(s.probe);
        }
        (report, probe)
    }

    /// Drive `wl` to completion across the shards and report. Bit-equal
    /// to [`Simulator::run_workload`] at any thread count.
    pub fn run_workload(self, wl: &crate::Workload) -> crate::WorkloadReport {
        self.run_workload_observed(wl).0
    }

    /// Drive `wl` to completion; return the report and the merged probe.
    ///
    /// Workload mode needs no injection pre-pass: all randomness was
    /// drawn at build time ([`wl_check`](crate::workload) rejects the
    /// rest), so the shards only exchange link events and fly-delayed
    /// [`Ev::WlArm`] completion notifications. The run ends when every
    /// shard votes idle in the same window (see [`run_shard_workload`]).
    pub fn run_workload_observed(self, wl: &crate::Workload) -> (crate::WorkloadReport, P) {
        let shards = self.effective_threads();
        if shards <= 1 {
            return Simulator::for_workload_observed(
                self.net,
                self.routing,
                self.cfg,
                wl,
                self.probe,
            )
            .run_workload_observed();
        }
        let wall_start = std::time::Instant::now();
        let map = Arc::new(ShardMap::build(self.net, shards));
        let num_nodes = self.net.num_nodes();

        let mut sims: Vec<Simulator<'a, P, ShardQueue>> = Vec::with_capacity(shards);
        for me in 0..shards as u32 {
            let queue = ShardQueue::new(me, map.clone(), &self.cfg);
            let mut sim = Simulator::with_queue(
                self.net,
                self.routing,
                self.cfg.clone(),
                TrafficPattern::Uniform,
                1.0,
                crate::workload::WL_HORIZON,
                0,
                queue,
                self.probe.fork(),
            );
            sim.wl_install(wl);
            // Prime the DAG roots of owned nodes. The initial keys sort
            // node-major then per-node root order — the exact sequence
            // the sequential engine's FIFO priming produces.
            for node in 0..num_nodes as u32 {
                if map.node[node as usize] != me {
                    continue;
                }
                let roots = std::mem::take(
                    &mut sim.wl.as_mut().expect("installed").roots_by_node[node as usize],
                );
                for (j, &msg) in roots.iter().enumerate() {
                    sim.queue.cal.schedule(
                        0,
                        ParEntry {
                            key: EvKey::initial_seq(node, j as u32),
                            ev: Ev::WlArm { node, msg },
                        },
                    );
                }
                sim.wl.as_mut().expect("installed").roots_by_node[node as usize] = roots;
            }
            sims.push(sim);
        }

        let mailboxes: Vec<Vec<[Mutex<Vec<Msg>>; 2]>> = (0..shards)
            .map(|_| {
                (0..shards)
                    .map(|_| [Mutex::new(Vec::new()), Mutex::new(Vec::new())])
                    .collect()
            })
            .collect();
        let barrier = Barrier::new(shards);
        let last_now = AtomicU64::new(0);
        let alive: Vec<[AtomicBool; 2]> = (0..shards)
            .map(|_| [AtomicBool::new(false), AtomicBool::new(false)])
            .collect();

        let mut done: Vec<Simulator<'a, P, ShardQueue>> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let (mailboxes, barrier, last_now, alive) = (&mailboxes, &barrier, &last_now, &alive);
            let handles: Vec<_> = sims
                .into_iter()
                .enumerate()
                .map(|(me, mut sim)| {
                    scope.spawn(move || {
                        run_shard_workload(
                            &mut sim, me, shards, mailboxes, barrier, last_now, alive,
                        );
                        sim
                    })
                })
                .collect();
            for h in handles {
                done.push(h.join().expect("parallel shard worker panicked"));
            }
        });
        let _ = wall_start.elapsed();
        self.merge_workload(done, &map)
    }

    /// Stitch the per-shard timing tables into one report. Ownership
    /// decides which shard holds the authoritative stamp for each field:
    /// arm/inject happen on the shard owning the message's *source*
    /// node, delivery on the shard owning its *destination*.
    fn merge_workload(
        self,
        shards: Vec<Simulator<'a, P, ShardQueue>>,
        map: &ShardMap,
    ) -> (crate::WorkloadReport, P) {
        let model = &shards[0].wl.as_ref().expect("installed").wl;
        let mut timings = Vec::with_capacity(model.messages.len());
        for (m, msg) in model.messages.iter().enumerate() {
            let src_sh = map.node[msg.src.index()] as usize;
            let dst_sh = map.node[msg.dst.index()] as usize;
            let s = shards[src_sh].wl.as_ref().expect("installed").timings[m];
            let d = shards[dst_sh].wl.as_ref().expect("installed").timings[m];
            timings.push(crate::MessageTiming {
                armed_ns: s.armed_ns,
                injected_ns: s.injected_ns,
                completed_ns: d.completed_ns,
            });
        }
        let mut completed = 0u64;
        let mut events = 0u64;
        let mut dropped = 0u64;
        for s in &shards {
            completed += s.wl.as_ref().expect("installed").completed;
            events += s.events_processed;
            dropped += s.dropped;
        }
        assert_eq!(
            completed,
            model.messages.len() as u64,
            "workload stalled: {} of {} messages completed ({} packets dropped in the fabric)",
            completed,
            model.messages.len(),
            dropped
        );
        let report =
            crate::WorkloadReport::build(model, timings, u64::from(self.cfg.packet_bytes), events);
        let mut probe = self.probe;
        for s in shards {
            probe.absorb(s.probe);
        }
        (report, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_keys_sort_before_any_dispatched_child() {
        use std::cmp::Ordering;
        let init = EvKey::initial(7);
        // A child scheduled at t=0 by the very first dispatch has a
        // parent, so priming events win the tie at t=0.
        let child = Arc::new(EvKey {
            sched: 0,
            tb: 0,
            parent: Some(EvKey::initial(0)),
        });
        assert_eq!(cmp_key(&init, &child), Ordering::Less);
        // And node order breaks ties among priming events.
        assert_eq!(
            cmp_key(&EvKey::initial(3), &EvKey::initial(7)),
            Ordering::Less
        );
    }

    #[test]
    fn lineage_walk_orders_by_the_parents_dispatch_order() {
        use std::cmp::Ordering;
        // Two children scheduled at the same instant by different
        // parents: the parent scheduled earlier dispatched first
        // sequentially, so its child sorts first — regardless of the
        // children's own tb.
        // One shared root, as in a real run: every key is created once.
        let root = EvKey::initial(0);
        let parent = |sched: Time, tb: u64| {
            Arc::new(EvKey {
                sched,
                tb,
                parent: Some(root.clone()),
            })
        };
        let child = |p: &Arc<EvKey>, tb: u64| {
            Arc::new(EvKey {
                sched: 500,
                tb,
                parent: Some(p.clone()),
            })
        };
        let (early, late) = (parent(100, 9), parent(400, 1));
        assert_eq!(cmp_key(&child(&early, 7), &child(&late, 2)), Ordering::Less);
        // Same parent *instant* but different call counters: the parent
        // scheduled by the earlier call dispatched first.
        let (first, second) = (parent(400, 1), parent(400, 2));
        assert_eq!(
            cmp_key(&child(&first, 9), &child(&second, 0)),
            Ordering::Less
        );
        // Same parent: the children's own program order decides.
        assert_eq!(
            cmp_key(&child(&first, 0), &child(&first, 1)),
            Ordering::Less
        );
    }

    #[test]
    fn shard_map_is_total_and_balanced() {
        use ibfat_topology::TreeParams;
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        let shards = 4;
        let map = ShardMap::build(&net, shards);
        assert_eq!(map.sw.len(), net.num_switches());
        assert_eq!(map.node.len(), net.num_nodes());
        for &s in map.sw.iter().chain(map.node.iter()) {
            assert!((s as usize) < shards);
        }
        // Every shard owns at least one switch (blocks are contiguous
        // and nonempty whenever shards <= switches).
        for want in 0..shards as u32 {
            assert!(map.sw.contains(&want), "shard {want} owns no switch");
        }
        // Nodes are co-located with their leaf switch.
        for n in 0..net.num_nodes() {
            let peer = net
                .peer_of(DeviceRef::Node(NodeId(n as u32)), PortNum(1))
                .expect("intact fabric");
            match peer.device {
                DeviceRef::Switch(sw) => {
                    assert_eq!(map.node[n], map.sw[sw.0 as usize]);
                }
                DeviceRef::Node(_) => unreachable!(),
            }
        }
    }
}
