/root/repo/target/debug/examples/quickstart-546fc97039a051f0.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-546fc97039a051f0.rmeta: examples/quickstart.rs

examples/quickstart.rs:
