/root/repo/target/debug/deps/ibfat_topology-8084a1fc48bee56d.d: crates/topology/src/lib.rs crates/topology/src/analysis_impl.rs crates/topology/src/build.rs crates/topology/src/digits.rs crates/topology/src/error.rs crates/topology/src/graph.rs crates/topology/src/ids.rs crates/topology/src/label.rs crates/topology/src/params.rs crates/topology/src/prefix.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_topology-8084a1fc48bee56d.rmeta: crates/topology/src/lib.rs crates/topology/src/analysis_impl.rs crates/topology/src/build.rs crates/topology/src/digits.rs crates/topology/src/error.rs crates/topology/src/graph.rs crates/topology/src/ids.rs crates/topology/src/label.rs crates/topology/src/params.rs crates/topology/src/prefix.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/analysis_impl.rs:
crates/topology/src/build.rs:
crates/topology/src/digits.rs:
crates/topology/src/error.rs:
crates/topology/src/graph.rs:
crates/topology/src/ids.rs:
crates/topology/src/label.rs:
crates/topology/src/params.rs:
crates/topology/src/prefix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
