use std::fmt;

/// Errors produced while constructing or validating topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// `m` must be an even power of two, at least 2 (the paper requires `m`
    /// to be a power of 2 so that `(m/2)^(n-1)` is a power of two and fits
    /// the LMC mechanism).
    InvalidPortCount { m: u32 },
    /// `n` must be at least 1 and small enough that the subnet fits the
    /// 16-bit unicast LID space.
    InvalidTreeHeight { n: u32 },
    /// The `(m, n)` combination overflows a dense-id type or the LID space.
    TooLarge {
        m: u32,
        n: u32,
        detail: &'static str,
    },
    /// A digit-string label is malformed for the given parameters.
    InvalidLabel(String),
    /// Graph validation failed (wiring, port, or count inconsistency).
    Invariant(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidPortCount { m } => {
                write!(f, "switch port count m={m} must be a power of two >= 2")
            }
            TopologyError::InvalidTreeHeight { n } => {
                write!(f, "tree parameter n={n} must be >= 1")
            }
            TopologyError::TooLarge { m, n, detail } => {
                write!(f, "FT({m}, {n}) is too large: {detail}")
            }
            TopologyError::InvalidLabel(s) => write!(f, "invalid label: {s}"),
            TopologyError::Invariant(s) => write!(f, "topology invariant violated: {s}"),
        }
    }
}

impl std::error::Error for TopologyError {}
