/root/repo/target/debug/deps/ibfat_repro-e3f1c001c3bf561d.d: src/lib.rs

/root/repo/target/debug/deps/libibfat_repro-e3f1c001c3bf561d.rlib: src/lib.rs

/root/repo/target/debug/deps/libibfat_repro-e3f1c001c3bf561d.rmeta: src/lib.rs

src/lib.rs:
