/root/repo/target/debug/examples/packet_trace-cad8123e49f4671b.d: examples/packet_trace.rs

/root/repo/target/debug/examples/packet_trace-cad8123e49f4671b: examples/packet_trace.rs

examples/packet_trace.rs:
