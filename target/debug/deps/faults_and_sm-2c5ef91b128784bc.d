/root/repo/target/debug/deps/faults_and_sm-2c5ef91b128784bc.d: tests/faults_and_sm.rs

/root/repo/target/debug/deps/libfaults_and_sm-2c5ef91b128784bc.rmeta: tests/faults_and_sm.rs

tests/faults_and_sm.rs:
