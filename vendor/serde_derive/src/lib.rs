//! Offline stub of `serde_derive`.
//!
//! The build container has no network access to crates.io, so the real
//! serde machinery is replaced by marker traits (see the sibling `serde`
//! stub). These derives emit empty `impl` blocks — just enough for
//! `T: Serialize` / `T: Deserialize` bounds to hold. Actual
//! serialization goes through hand-rolled JSON in the workspace crates;
//! `serde_json::to_string` on a derived type returns an error at runtime.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name from a (non-generic) `struct`/`enum` item.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip outer attributes: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    if let Some(TokenTree::Ident(name)) = iter.next() {
                        return name.to_string();
                    }
                    panic!("serde_derive stub: missing type name");
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde_derive stub: not a struct or enum");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
