/root/repo/target/debug/deps/ibfat_repro-6c6ca19adab636b1.d: src/lib.rs

/root/repo/target/debug/deps/ibfat_repro-6c6ca19adab636b1: src/lib.rs

src/lib.rs:
