/root/repo/target/debug/examples/path_diversity-88c012ea30e28b7a.d: examples/path_diversity.rs

/root/repo/target/debug/examples/libpath_diversity-88c012ea30e28b7a.rmeta: examples/path_diversity.rs

examples/path_diversity.rs:
