//! Virtual-lane arbitration (IBA VLArbitration tables, simplified to
//! packet granularity).
//!
//! Every egress port (switch output or HCA injection side) cycles through
//! a table of `(vl, weight)` entries: while the current entry's VL has an
//! eligible packet and remaining weight, it transmits; otherwise the
//! arbiter advances to the next entry, replenishing its weight. Plain
//! round-robin is the all-weights-one table. Weights are counted in
//! packets (IBA counts 64-byte units; with fixed-size packets the two are
//! proportional).

use serde::{Deserialize, Serialize};

/// Arbitration policy for a port's egress.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum VlArbitration {
    /// One packet per VL in cyclic order (the paper's implicit policy).
    #[default]
    RoundRobin,
    /// A weighted table of `(vl, weight)` entries, serviced cyclically.
    /// VLs may appear multiple times; entries with weight 0 are skipped.
    Weighted(Vec<(u8, u8)>),
}

impl VlArbitration {
    /// Materialize the entry table for `num_vls` lanes.
    pub fn table(&self, num_vls: u8) -> Vec<(u8, u8)> {
        match self {
            VlArbitration::RoundRobin => (0..num_vls).map(|vl| (vl, 1)).collect(),
            VlArbitration::Weighted(entries) => entries
                .iter()
                .copied()
                .filter(|&(vl, w)| vl < num_vls && w > 0)
                .collect(),
        }
    }

    /// Validate against a VL count.
    pub fn validate(&self, num_vls: u8) -> Result<(), String> {
        let table = self.table(num_vls);
        if table.is_empty() {
            return Err("VL arbitration table has no usable entries".into());
        }
        for vl in 0..num_vls {
            if !table.iter().any(|&(v, _)| v == vl) {
                return Err(format!("VL {vl} never serviced by the arbitration table"));
            }
        }
        Ok(())
    }
}

/// Per-port arbiter state over a shared entry table.
#[derive(Debug, Clone)]
pub struct VlArbiter {
    /// Index of the current entry.
    idx: usize,
    /// Packets the current entry may still send before yielding.
    remaining: u8,
}

impl VlArbiter {
    /// Fresh state positioned at the first entry.
    pub fn new(table: &[(u8, u8)]) -> Self {
        VlArbiter {
            idx: 0,
            remaining: table.first().map(|&(_, w)| w).unwrap_or(0),
        }
    }

    /// Pick the VL to transmit next among those for which `eligible`
    /// holds, honouring weights; `None` if nothing is eligible. The
    /// arbiter state advances only when a grant is made or an entry is
    /// exhausted/ineligible and skipped.
    pub fn grant<F: Fn(u8) -> bool>(&mut self, table: &[(u8, u8)], eligible: F) -> Option<u8> {
        if table.is_empty() {
            return None;
        }
        // At most one full cycle of the table plus the current entry.
        for step in 0..=table.len() {
            let (vl, weight) = table[self.idx];
            if self.remaining > 0 && eligible(vl) {
                self.remaining -= 1;
                return Some(vl);
            }
            // Exhausted or ineligible: advance (but never spin forever).
            if step == table.len() {
                break;
            }
            self.idx = (self.idx + 1) % table.len();
            self.remaining = table[self.idx].1;
            let _ = weight;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(arb: &mut VlArbiter, table: &[(u8, u8)], n: usize) -> Vec<u8> {
        (0..n)
            .map(|_| arb.grant(table, |_| true).expect("always eligible"))
            .collect()
    }

    #[test]
    fn round_robin_alternates() {
        let table = VlArbitration::RoundRobin.table(3);
        let mut arb = VlArbiter::new(&table);
        assert_eq!(drain(&mut arb, &table, 6), vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn weights_are_respected() {
        let table = VlArbitration::Weighted(vec![(0, 3), (1, 1)]).table(2);
        let mut arb = VlArbiter::new(&table);
        assert_eq!(drain(&mut arb, &table, 8), vec![0, 0, 0, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn ineligible_vls_are_skipped_without_starvation() {
        let table = VlArbitration::Weighted(vec![(0, 2), (1, 2)]).table(2);
        let mut arb = VlArbiter::new(&table);
        // Only VL 1 has traffic.
        assert_eq!(arb.grant(&table, |vl| vl == 1), Some(1));
        assert_eq!(arb.grant(&table, |vl| vl == 1), Some(1));
        // Then VL 0 becomes eligible again.
        assert_eq!(arb.grant(&table, |_| true), Some(0));
    }

    #[test]
    fn nothing_eligible_returns_none_without_state_loss() {
        let table = VlArbitration::RoundRobin.table(2);
        let mut arb = VlArbiter::new(&table);
        assert_eq!(arb.grant(&table, |_| false), None);
        assert_eq!(arb.grant(&table, |_| true), Some(0));
    }

    #[test]
    fn validation_requires_full_coverage() {
        assert!(VlArbitration::RoundRobin.validate(4).is_ok());
        assert!(VlArbitration::Weighted(vec![(0, 1)]).validate(2).is_err());
        assert!(VlArbitration::Weighted(vec![(0, 0)]).validate(1).is_err());
        assert!(VlArbitration::Weighted(vec![(0, 2), (1, 1)])
            .validate(2)
            .is_ok());
        // Out-of-range VLs are filtered, leaving coverage incomplete.
        assert!(VlArbitration::Weighted(vec![(0, 1), (5, 1)])
            .validate(2)
            .is_err());
    }

    #[test]
    fn zero_weight_entries_are_dropped() {
        let table = VlArbitration::Weighted(vec![(0, 0), (1, 2)]).table(2);
        assert_eq!(table, vec![(1, 2)]);
    }
}
