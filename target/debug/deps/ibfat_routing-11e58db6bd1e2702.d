/root/repo/target/debug/deps/ibfat_routing-11e58db6bd1e2702.d: crates/routing/src/lib.rs crates/routing/src/deadlock.rs crates/routing/src/error.rs crates/routing/src/fault.rs crates/routing/src/lft.rs crates/routing/src/lid.rs crates/routing/src/load.rs crates/routing/src/mlid.rs crates/routing/src/path.rs crates/routing/src/scheme.rs crates/routing/src/slid.rs crates/routing/src/updown.rs crates/routing/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libibfat_routing-11e58db6bd1e2702.rmeta: crates/routing/src/lib.rs crates/routing/src/deadlock.rs crates/routing/src/error.rs crates/routing/src/fault.rs crates/routing/src/lft.rs crates/routing/src/lid.rs crates/routing/src/load.rs crates/routing/src/mlid.rs crates/routing/src/path.rs crates/routing/src/scheme.rs crates/routing/src/slid.rs crates/routing/src/updown.rs crates/routing/src/verify.rs Cargo.toml

crates/routing/src/lib.rs:
crates/routing/src/deadlock.rs:
crates/routing/src/error.rs:
crates/routing/src/fault.rs:
crates/routing/src/lft.rs:
crates/routing/src/lid.rs:
crates/routing/src/load.rs:
crates/routing/src/mlid.rs:
crates/routing/src/path.rs:
crates/routing/src/scheme.rs:
crates/routing/src/slid.rs:
crates/routing/src/updown.rs:
crates/routing/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
