//! Conservatively synchronized parallel execution of the subnet
//! simulator, bit-identical to the sequential engine.
//!
//! ## Design (bounded-lag time windows)
//!
//! The fabric is sharded by device: switches are partitioned by a
//! topology-aware partitioner (see below) and every end node joins its
//! leaf switch's shard, so the only events that ever cross a shard
//! boundary are the single-link switch-to-switch interactions —
//! `SwHeaderArrive` (a packet header crossing a wire) and
//! `CreditToSwitch` (a credit flying back) — plus workload-mode's
//! fly-delayed completion notifications. All are scheduled at least one
//! wire flight (`fly_time_ns`) in the future, which makes the wire
//! flight a *static lookahead* `W = SimConfig::lookahead_ns()`: an
//! event sent while a shard executes a window bounded by `B` can only
//! fire at or after `B`. Each worker dispatches every local event with
//! `t < B`, stages its cross-shard sends into per-`(src, dst)` mailbox
//! lanes, and meets the others at one barrier per window; the next
//! window starts by draining the inbound lanes into the local calendar.
//!
//! ### Shard partitioning
//!
//! Switch-to-shard assignment is [`PartitionKind::FatTree`] by default:
//! leaf switches are block-split in leaf order (keeping each leaf's
//! nodes with it) and upper levels join the shard owning the majority
//! of their down-neighbors, so whole subtrees stay in one shard and
//! only genuinely shared top-of-tree cables are cut
//! ([`ibfat_topology::fat_tree_switch_partition`]). The legacy id-order
//! block split remains as [`PartitionKind::Block`]; the number of cut
//! cables — the synchronization-traffic metric — is reported by
//! [`ParSimulator::partition_edge_cut`]. The choice never changes the
//! report, only how much traffic crosses shards.
//!
//! ### Adaptive windows
//!
//! Window bounds advance in whole multiples of `W`. Under
//! [`WindowPolicy::Fixed`] each window spans exactly one `W`. Under
//! [`WindowPolicy::Adaptive`] (the default) every shard posts, before
//! each barrier, the earliest simulation time it still knows about (its
//! calendar plus the messages it just put in flight); the global
//! minimum `g` of those posts is agreed by all shards after the
//! barrier, and the next bound jumps to the end of the window
//! containing `g` — `(g / W + 1) * W`. Quiet stretches therefore cost
//! one barrier instead of one per lookahead, and the jump is sound:
//! every pending event and in-flight message fires at or after `g`, and
//! any message sent from a dispatch at `t >= g` lands at
//! `t + W >= (g / W + 1) * W`, never inside the window that sent it.
//! Window boundaries do not affect cohort composition or dispatch
//! order, so reports are bit-identical across policies.
//!
//! ### Mailbox lanes
//!
//! Each ordered shard pair owns a [`MailLane`]: two swap-buffered
//! batches indexed by window parity, each guarded by a (never
//! contended) mutex plus a `full` flag. A sender flushes its staged
//! outbox once per window by swapping the whole `Vec` into the
//! opposite-parity side; the receiver checks the flag with a single
//! atomic load — skipping the lock entirely in the common empty case —
//! and swaps the batch out, recycling buffer capacity in both
//! directions. The window barrier separates every ownership handoff.
//! A worker that panics trips the shared [`SyncGate`], releasing every
//! peer from the barrier; the run then returns
//! [`SimError::WorkerPanicked`] instead of poisoning mailbox locks.
//!
//! ## Determinism (the lineage key)
//!
//! The sequential engine fires same-timestamp events in *scheduling
//! order* (calendar FIFO). To reproduce that order without a global
//! calendar, every scheduled event carries an [`EvKey`] — a node in a
//! shared lineage tree — and each shard dispatches its per-timestamp
//! cohort in key order. A key holds:
//!
//! 1. `sched` — the simulation time of the scheduling call. FIFO pops
//!    earlier-scheduled events first; so does the key.
//! 2. `parent` — the key of the event whose dispatch made the call
//!    (`None` for the pre-loop priming injections, which sequential FIFO
//!    pops before anything a dispatch scheduled at the same instant).
//!    Among events scheduled at the same instant by different dispatches,
//!    the sequential order is the dispatch order of those parents — which
//!    (inductively) is the parents' key order — so comparison recurses
//!    into the lineage.
//! 3. `tb` — `(device class, device id, per-device schedule counter)` of
//!    the scheduling call. Two calls from the same dispatch compare by
//!    counter: exactly their program order.
//!
//! The comparison is *exact*, and cheap: two distinct events with a
//! common parent always differ in `tb` (same device, distinct counter
//! values), so the lineage walk stops at the first level where the two
//! ancestries either merge (one shared `Arc`) or diverge in `sched` —
//! no unbounded tie falls through. Lineage nodes are reference-counted
//! and shared; the retained set is dominated by each node's injection
//! chain (one node per generated packet), a few dozen bytes per packet.
//!
//! Zero-delay events (scheduled at the instant being dispatched) never
//! enter the calendar at all: sequential FIFO guarantees they pop after
//! everything already pending at that instant, in schedule order, so the
//! driver appends them to the tail of the running cohort unsorted —
//! exact by construction.
//!
//! ## Injection pre-pass
//!
//! The only RNG consumers in the engine are the injection-side draws
//! (traffic pattern, DLID/VL selection, Poisson inter-arrivals), and the
//! relative order of `Inject` dispatches is independent of fabric events.
//! A sequential pre-pass replays exactly the injection subsequence —
//! priming every node in node order, then popping a `(time, insertion
//! seq)` heap and calling the same `draw_injection` the sequential
//! engine uses — producing per-node scripts of pre-drawn injections.
//! Shards consume their nodes' scripts instead of touching the RNG, so
//! the random stream order is the sequential one by construction; flight-
//! recorder slots and flow sequence numbers are assigned globally in the
//! pre-pass for the same reason.
//!
//! ## Merging
//!
//! Shard reports merge exactly: window counters, latency histograms and
//! per-device busy times are disjoint sums; `in_flight_at_end` uses the
//! slab identity `generated − delivered − dropped` (a packet mid-flight
//! across a shard boundary at the end of the run lives in a mailbox, not
//! a slab); traces concatenate per slot and sort by time (two same-time
//! events of one packet can never sit in different shards, because a
//! crossing costs a full wire flight). Probes fork one child per shard
//! and absorb commutatively at the end ([`ParProbe`]).

use crate::engine::{EventQueue, Time};
use crate::error::SimError;
use crate::metrics::{LatencyStats, SimReport};
use crate::packet::Packet;
use crate::probe::{NoopProbe, ParProbe, Probe};
use crate::sim::{Ev, InjectRec, Sched, Simulator};
use crate::telemetry::{EngineTelemetry, ShardTelemetry, WindowRecord};
use crate::trace::PacketTrace;
use crate::{PartitionKind, SimConfig, TrafficPattern, WindowPolicy};
use ibfat_routing::Routing;
use ibfat_topology::{
    block_switch_partition, fat_tree_switch_partition, switch_edge_cut, DeviceRef, Network, NodeId,
    PortNum,
};
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Lock that shrugs off poisoning. Worker panics abort the whole run
/// through the [`SyncGate`] and the protected data is never read after
/// an abort, so a poisoned mutex carries no integrity risk here — it
/// only means "the panicking worker once held this lock".
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Deterministic tiebreak key for same-timestamp events: one node of the
/// shared lineage tree (see the module docs). Compared with [`cmp_key`].
#[derive(Debug)]
pub(crate) struct EvKey {
    /// Simulation time of the scheduling call.
    pub(crate) sched: Time,
    /// `class << 63 | device id << 32 | per-device schedule counter`.
    pub(crate) tb: u64,
    /// The event whose dispatch made the scheduling call; `None` for the
    /// pre-loop priming injections.
    pub(crate) parent: Option<Arc<EvKey>>,
}

impl EvKey {
    /// Key of a pre-loop priming event (the initial `Inject` per node):
    /// rootless, so it sorts before any dispatched event's children at
    /// the same instant, and node order matches the sequential priming
    /// loop's insertion order.
    pub(crate) fn initial(node: u32) -> Arc<EvKey> {
        EvKey::initial_seq(node, 0)
    }

    /// Key of the `seq`-th priming event of a node. Workload mode primes
    /// one `WlArm` per DAG root, and a node can own several roots; the
    /// sequential engine primes them node-major in ascending id order,
    /// which `(node, seq)` in the tiebreak word reproduces exactly.
    pub(crate) fn initial_seq(node: u32, seq: u32) -> Arc<EvKey> {
        Arc::new(EvKey {
            sched: 0,
            tb: (u64::from(node) << 32) | u64::from(seq),
            parent: None,
        })
    }
}

/// Total order over lineage keys, equal to the sequential engine's FIFO
/// order for same-timestamp events: `sched` first, then the parents'
/// order (recursively), then the per-dispatch call counter.
///
/// The walk is iterative and terminates at the first level where the two
/// ancestries merge (shared `Arc` or both roots) or diverge in `sched`:
/// two distinct events sharing a parent always differ in `tb` (same
/// device, distinct counter values), so once the parents are *the same
/// event* this level's `tb` decides. Distinct events never compare equal.
///
/// Merge detection is by `Arc` identity first (the in-process fast path)
/// and by *value* as a fallback: lineage that crossed a process bridge is
/// deserialized into fresh `Arc`s, and one common ancestor reached via
/// two different channels materializes twice. A dispatched event is
/// uniquely named by `(sched, tb)` — the per-device counter is issued
/// once — so equal `(sched, tb)` means the same event, *except* that a
/// priming key (`parent: None`, `sched: 0`) could collide with a t = 0
/// dispatch-scheduled event of the same device and counter; requiring
/// the two nodes to agree on rootedness excludes exactly that case.
pub(crate) fn cmp_key(a: &Arc<EvKey>, b: &Arc<EvKey>) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    let (mut a, mut b) = (a, b);
    loop {
        match a.sched.cmp(&b.sched) {
            Equal => {}
            o => return o,
        }
        match (&a.parent, &b.parent) {
            (None, None) => return a.tb.cmp(&b.tb),
            (None, Some(_)) => return Less,
            (Some(_), None) => return Greater,
            (Some(pa), Some(pb)) => {
                if Arc::ptr_eq(pa, pb)
                    || (pa.sched == pb.sched
                        && pa.tb == pb.tb
                        && pa.parent.is_none() == pb.parent.is_none())
                {
                    return a.tb.cmp(&b.tb);
                }
                a = pa;
                b = pb;
            }
        }
    }
}

/// One keyed calendar entry.
#[derive(Debug, Clone)]
pub(crate) struct ParEntry {
    pub(crate) key: Arc<EvKey>,
    pub(crate) ev: Ev,
}

/// A cross-shard event in flight between windows.
pub(crate) struct Msg {
    pub(crate) at: Time,
    pub(crate) key: Arc<EvKey>,
    pub(crate) kind: MsgKind,
}

pub(crate) enum MsgKind {
    /// A packet header crossing the shard boundary: the packet leaves the
    /// source shard's slab and is re-inserted at the destination.
    Arrive {
        sw: u32,
        port: u8,
        vl: u8,
        packet: Packet,
        /// Flight-recorder slot (`u32::MAX` = untraced).
        trace_slot: u32,
        /// Workload message id (`u32::MAX` = pattern mode) — the side
        /// table entry travels with the packet across the slab transfer.
        wl_msg: u32,
    },
    /// A credit returning across the shard boundary.
    Credit { sw: u32, port: u8, vl: u8 },
    /// Workload mode: a completion notification releasing a dependent
    /// message on another shard's node. Scheduled exactly one wire
    /// flight after the completing delivery, so it respects the same
    /// lookahead as the link events.
    Arm { node: u32, msg: u32 },
}

/// A cross-shard schedule call awaiting conversion to a [`Msg`]. The
/// packet id is resolved against the slab immediately after the dispatch
/// that produced it, before any other dispatch can recycle the slot.
pub(crate) struct PendingCross {
    pub(crate) dst: u32,
    pub(crate) at: Time,
    pub(crate) key: Arc<EvKey>,
    pub(crate) ev: Ev,
}

/// Device-to-shard assignment: switches partitioned per
/// [`PartitionKind`], nodes co-located with their leaf switch (so
/// node-side events never cross).
pub(crate) struct ShardMap {
    pub(crate) sw: Vec<u32>,
    pub(crate) node: Vec<u32>,
    /// Switch-to-switch cables whose endpoints fall in different
    /// shards — the partition quality metric (every cut cable is a
    /// potential cross-shard message lane).
    pub(crate) edge_cut: usize,
}

impl ShardMap {
    pub(crate) fn build(net: &Network, shards: usize, kind: PartitionKind) -> ShardMap {
        let sw = match kind {
            PartitionKind::FatTree => fat_tree_switch_partition(net, shards),
            PartitionKind::Block => block_switch_partition(net.num_switches(), shards),
        };
        let edge_cut = switch_edge_cut(net, &sw);
        let node = (0..net.num_nodes())
            .map(|n| {
                match net.peer_of(DeviceRef::Node(NodeId(n as u32)), PortNum(1)) {
                    Some(p) => match p.device {
                        DeviceRef::Switch(s) => sw[s.0 as usize],
                        DeviceRef::Node(_) => unreachable!("endports attach to switches"),
                    },
                    // Isolated nodes never source or sink events.
                    None => 0,
                }
            })
            .collect();
        ShardMap { sw, node, edge_cut }
    }
}

/// One directed mailbox lane between an ordered pair of shards,
/// double-buffered by window parity. Exactly one sender and one
/// receiver ever touch a side, and the window barrier sits between
/// every ownership handoff, so the mutexes are never contended; the
/// `full` flag lets the receiver skip even the uncontended lock in the
/// (common) empty case with a single atomic load.
struct MailLane {
    full: [AtomicBool; 2],
    buf: [Mutex<Vec<Msg>>; 2],
}

impl MailLane {
    fn new() -> MailLane {
        MailLane {
            full: [AtomicBool::new(false), AtomicBool::new(false)],
            buf: [Mutex::new(Vec::new()), Mutex::new(Vec::new())],
        }
    }

    /// Publish a staged batch into side `side`, taking the drained
    /// buffer parked there in exchange — batches swap back and forth
    /// between sender and receiver instead of reallocating every
    /// window.
    fn publish(&self, side: usize, staged: &mut Vec<Msg>) {
        debug_assert!(!staged.is_empty(), "publishing an empty batch");
        {
            let mut parked = lock(&self.buf[side]);
            debug_assert!(parked.is_empty(), "lane side published before drain");
            std::mem::swap(&mut *parked, staged);
        }
        self.full[side].store(true, Ordering::Release);
    }

    /// Take side `side`'s batch into the empty `into`; returns `false`
    /// without touching the lock when nothing was published — the
    /// empty-mailbox fast path.
    fn take(&self, side: usize, into: &mut Vec<Msg>) -> bool {
        if !self.full[side].swap(false, Ordering::Acquire) {
            return false;
        }
        debug_assert!(into.is_empty(), "draining into a non-empty scratch");
        std::mem::swap(&mut *lock(&self.buf[side]), into);
        true
    }
}

/// A reusable rendezvous barrier that can be aborted: a worker that
/// panics trips the gate on its way out, releasing every peer parked in
/// [`SyncGate::wait`] with [`GateAborted`] instead of deadlocking the
/// thread scope on a barrier that will never fill again.
struct SyncGate {
    n: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    arrived: usize,
    generation: u64,
    aborted: bool,
}

/// A peer panicked and tripped the gate; unwind quietly.
#[derive(Debug)]
struct GateAborted;

/// Why a shard worker stopped early: released by a peer's abort, or its
/// own engine detected an invariant violation (release builds surface
/// that as [`SimError::EngineInvariant`] instead of panicking).
enum ShardAbort {
    Gate,
    Invariant(SimError),
}

impl From<GateAborted> for ShardAbort {
    fn from(_: GateAborted) -> ShardAbort {
        ShardAbort::Gate
    }
}

impl SyncGate {
    fn new(n: usize) -> SyncGate {
        SyncGate {
            n,
            state: Mutex::new(GateState {
                arrived: 0,
                generation: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Park until all `n` workers arrive (or the gate is aborted).
    fn wait(&self) -> Result<(), GateAborted> {
        let mut s = lock(&self.state);
        if s.aborted {
            return Err(GateAborted);
        }
        s.arrived += 1;
        if s.arrived == self.n {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && !s.aborted {
            s = self.cv.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        if s.aborted {
            Err(GateAborted)
        } else {
            Ok(())
        }
    }

    /// Trip the gate: every current and future [`SyncGate::wait`]
    /// returns [`GateAborted`].
    fn abort(&self) {
        lock(&self.state).aborted = true;
        self.cv.notify_all();
    }
}

/// Shared per-run window synchronization state.
struct WindowSync {
    gate: SyncGate,
    /// Per-shard, parity-indexed: the earliest simulation time the
    /// shard still knows about (its calendar plus everything it just
    /// put in flight), posted before each barrier. The minimum over
    /// all shards is the global next-event time `g` that adaptive
    /// windowing jumps to and that decides termination.
    next_min: Vec<[AtomicU64; 2]>,
    /// Global last dispatch time, for the probe close-out.
    last_now: AtomicU64,
}

impl WindowSync {
    fn new(shards: usize) -> WindowSync {
        WindowSync {
            gate: SyncGate::new(shards),
            next_min: (0..shards)
                .map(|_| [AtomicU64::new(0), AtomicU64::new(0)])
                .collect(),
            last_now: AtomicU64::new(0),
        }
    }
}

/// Render a worker's panic payload for [`SimError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `(tb prefix, per-device counter index)` of the device whose handler
/// is dispatching — the target device of the event being dispatched.
pub(crate) fn scheduling_dev(ev: &Ev, num_nodes: u32) -> (u64, u32) {
    match *ev {
        Ev::Inject { node }
        | Ev::TryNodeSend { node }
        | Ev::CreditToNode { node, .. }
        | Ev::Deliver { node, .. }
        | Ev::WlArm { node, .. } => (u64::from(node) << 32, node),
        Ev::SwHeaderArrive { sw, .. }
        | Ev::SwRouteDone { sw, .. }
        | Ev::SwInputDeparted { sw, .. }
        | Ev::SwTryOutput { sw, .. }
        | Ev::SwOutputDeparted { sw, .. }
        | Ev::CreditToSwitch { sw, .. }
        | Ev::SwDiscardDone { sw, .. }
        | Ev::SwReprogram { sw, .. } => ((1 << 63) | (u64::from(sw) << 32), num_nodes + sw),
        // Schedules nothing: the device context is never consumed.
        Ev::FaultApply { .. } => (0, 0),
    }
}

/// The parallel engine's scheduler seam: handlers schedule through this
/// (via [`Sched`]) exactly as they do through the sequential calendar;
/// the queue keys each event, routes local ones into the shard's wheel
/// (or the running cohort, for zero-delay events) and stages cross-shard
/// ones for the window-end mailbox flush.
pub struct ShardQueue {
    me: u32,
    map: Arc<ShardMap>,
    num_nodes: u32,
    lookahead: u64,
    pub(crate) cal: EventQueue<ParEntry>,
    /// Per-device schedule-call counters (nodes, then switches).
    seq: Vec<u32>,
    // --- context of the dispatch in progress, set by the driver ---
    cur_time: Time,
    parent_key: Arc<EvKey>,
    cur_tb_base: u64,
    cur_seq_idx: u32,
    /// Zero-delay events: appended to the running cohort in schedule
    /// order (exact sequential FIFO), never key-sorted.
    same_time: Vec<ParEntry>,
    /// Cross-shard sends of the dispatch in progress.
    pending: Vec<PendingCross>,
}

impl ShardQueue {
    pub(crate) fn new(me: u32, map: Arc<ShardMap>, cfg: &SimConfig) -> ShardQueue {
        let num_nodes = map.node.len() as u32;
        let num_sw = map.sw.len() as u32;
        ShardQueue {
            me,
            map,
            num_nodes,
            lookahead: cfg.lookahead_ns(),
            cal: EventQueue::with_kind_and_horizon(cfg.calendar, cfg.wheel_horizon_hint()),
            seq: vec![0; (num_nodes + num_sw) as usize],
            cur_time: 0,
            parent_key: EvKey::initial(0),
            cur_tb_base: 0,
            cur_seq_idx: 0,
            same_time: Vec::new(),
            pending: Vec::new(),
        }
    }

    fn begin_dispatch(&mut self, t: Time, key: Arc<EvKey>, ev: &Ev) {
        self.cur_time = t;
        self.parent_key = key;
        let (tb_base, seq_idx) = scheduling_dev(ev, self.num_nodes);
        self.cur_tb_base = tb_base;
        self.cur_seq_idx = seq_idx;
    }

    fn dst_shard(&self, ev: &Ev) -> u32 {
        match *ev {
            Ev::Inject { node }
            | Ev::TryNodeSend { node }
            | Ev::CreditToNode { node, .. }
            | Ev::Deliver { node, .. }
            | Ev::WlArm { node, .. } => self.map.node[node as usize],
            Ev::SwHeaderArrive { sw, .. }
            | Ev::SwRouteDone { sw, .. }
            | Ev::SwInputDeparted { sw, .. }
            | Ev::SwTryOutput { sw, .. }
            | Ev::SwOutputDeparted { sw, .. }
            | Ev::CreditToSwitch { sw, .. }
            | Ev::SwDiscardDone { sw, .. }
            | Ev::SwReprogram { sw, .. } => self.map.sw[sw as usize],
            // Seeded directly into each shard's calendar at
            // construction, never scheduled through this seam; local by
            // definition if it ever is.
            Ev::FaultApply { .. } => self.me,
        }
    }
}

impl Sched for ShardQueue {
    fn schedule(&mut self, at: Time, ev: Ev) {
        let seq = self.seq[self.cur_seq_idx as usize];
        self.seq[self.cur_seq_idx as usize] = seq.wrapping_add(1);
        let key = Arc::new(EvKey {
            sched: self.cur_time,
            tb: self.cur_tb_base | u64::from(seq),
            parent: Some(self.parent_key.clone()),
        });
        let dst = self.dst_shard(&ev);
        if dst == self.me {
            if at == self.cur_time {
                self.same_time.push(ParEntry { key, ev });
            } else {
                debug_assert!(at > self.cur_time, "scheduled into the past");
                self.cal.schedule(at, ParEntry { key, ev });
            }
        } else {
            debug_assert!(
                matches!(
                    ev,
                    Ev::SwHeaderArrive { .. } | Ev::CreditToSwitch { .. } | Ev::WlArm { .. }
                ),
                "only single-link and completion-notification events may cross shards"
            );
            debug_assert!(
                at >= self.cur_time + self.lookahead,
                "cross-shard event violates the lookahead"
            );
            self.pending.push(PendingCross { dst, at, key, ev });
        }
    }
}

/// Sequential replay of exactly the injection subsequence: produces the
/// per-node scripts of pre-drawn injections (identical RNG order to the
/// sequential run) plus the globally assigned flight-recorder headers.
///
/// `keep` filters which nodes' scripts are *retained* (`None` keeps
/// all). Every node is still replayed — the RNG sequence and the trace
/// headers are global — but a caller that only injects at a subset of
/// nodes (a multi-process worker with its shard range, the supervisor
/// that only wants the headers) never materializes the rest, which is
/// what keeps a worker's peak resident set proportional to its share
/// of the fabric.
#[allow(clippy::too_many_arguments)]
pub(crate) fn injection_prepass(
    net: &Network,
    routing: &Routing,
    cfg: &SimConfig,
    pattern: &TrafficPattern,
    offered_load: f64,
    sim_time_ns: Time,
    warmup_ns: Time,
    keep: Option<&[bool]>,
) -> (Vec<VecDeque<InjectRec>>, Vec<PacketTrace>) {
    let mut gen = Simulator::new(
        net,
        routing,
        cfg.clone(),
        pattern.clone(),
        offered_load,
        sim_time_ns,
        warmup_ns,
    );
    let n = gen.nodes.len();
    let mut scripts: Vec<VecDeque<InjectRec>> = (0..n).map(|_| VecDeque::new()).collect();
    // `(time, insertion seq, node)`: pops in exactly the order the
    // sequential calendar fires the Inject subsequence (FIFO preserves
    // the relative order of any subsequence of insertions).
    let mut heap: BinaryHeap<Reverse<(Time, u64, u32)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for node in 0..n as u32 {
        if !gen.nodes[node as usize].active {
            continue;
        }
        let phase = gen.rng.gen_range(0.0..gen.interarrival_ns);
        gen.nodes[node as usize].next_gen = phase;
        heap.push(Reverse((phase as Time, seq, node)));
        seq += 1;
    }
    while let Some(Reverse((t, _, node))) = heap.pop() {
        if t >= sim_time_ns {
            break; // time-ordered pops: nothing later fires either
        }
        gen.now = t;
        let (payload, next_at) = gen.draw_injection(node);
        if keep.is_none_or(|k| k[node as usize]) {
            scripts[node as usize].push_back(InjectRec { at: t, payload });
        }
        if let Some(at) = next_at {
            heap.push(Reverse((at, seq, node)));
            seq += 1;
        }
    }
    (scripts, gen.traces)
}

/// Seed one shard's calendar with the compiled fault plan, mirroring the
/// sequential engine's `schedule_fault_events`: per fault, `FaultApply`
/// lands on *every* shard (it only swaps shard-local masks, and keeping
/// it global keeps `events_processed` engine-invariant) and one
/// `SwReprogram` per patched switch lands on the switch's owner. The
/// synthetic keys are rootless with bit 63 set, so within a timestamp
/// cohort they sort after the (node-class) priming injections and before
/// every dispatch-scheduled event — exactly where sequential FIFO places
/// events scheduled by the pre-loop — and `(fault, k)` lexicographic
/// order reproduces the sequential scheduling order at shared instants.
pub(crate) fn schedule_fault_entries<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    map: &ShardMap,
    me: u32,
) {
    let Some(rt) = sim.faults.as_ref().and_then(|f| f.runtime.clone()) else {
        return;
    };
    for (fi, cf) in rt.faults.iter().enumerate() {
        let fault = fi as u32;
        let key = |k: u32| {
            Arc::new(EvKey {
                sched: 0,
                tb: (1 << 63) | (u64::from(fault) << 32) | u64::from(k),
                parent: None,
            })
        };
        sim.queue.cal.schedule(
            cf.at,
            ParEntry {
                key: key(0),
                ev: Ev::FaultApply { fault },
            },
        );
        for (rank, &(sw, _)) in cf.patches.iter().enumerate() {
            if map.sw[sw as usize] != me {
                continue;
            }
            sim.queue.cal.schedule(
                cf.reprogram_at,
                ParEntry {
                    key: key(1 + rank as u32),
                    ev: Ev::SwReprogram { fault, sw },
                },
            );
        }
    }
}

/// Drain this shard's inbound mailbox lanes (parity side) into the
/// local calendar. Every message was sent under the previous window's
/// bound and fires at or after it — possibly several windows from now,
/// in which case it simply waits in the calendar. Returns how many
/// messages arrived (`> 0` is the empty-window fast path's trigger;
/// the count itself feeds engine telemetry).
fn drain_inbound<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    me: usize,
    prev_bound: Time,
    parity: usize,
    lanes: &[Vec<MailLane>],
    scratch: &mut Vec<Msg>,
) -> usize {
    let mut drained = 0usize;
    for (src, from_src) in lanes.iter().enumerate() {
        if src == me {
            continue;
        }
        if !from_src[me].take(parity, scratch) {
            continue;
        }
        drained += scratch.len();
        schedule_inbound(sim, prev_bound, scratch.drain(..));
    }
    drained
}

/// Schedule one source's inbound batch into the local calendar, in batch
/// (publish) order — packet-slab insertion happens here, so a shard's
/// slab id sequence is a pure function of its drain/dispatch history.
/// Shared by the threaded drain above and the multi-process child loop
/// ([`crate::dist`]), which must replay exactly this sequence.
pub(crate) fn schedule_inbound<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    prev_bound: Time,
    msgs: impl Iterator<Item = Msg>,
) {
    for msg in msgs {
        debug_assert!(msg.at >= prev_bound, "cross-shard message in the past");
        let ev = match msg.kind {
            MsgKind::Arrive {
                sw,
                port,
                vl,
                packet,
                trace_slot,
                wl_msg,
            } => {
                let pkt = sim.slab.insert(packet);
                sim.set_trace_slot(pkt, trace_slot);
                if wl_msg != u32::MAX {
                    sim.wl_set_msg(pkt, wl_msg);
                }
                Ev::SwHeaderArrive { sw, port, vl, pkt }
            }
            MsgKind::Credit { sw, port, vl } => Ev::CreditToSwitch { sw, port, vl },
            MsgKind::Arm { node, msg } => Ev::WlArm { node, msg },
        };
        sim.queue
            .cal
            .schedule(msg.at, ParEntry { key: msg.key, ev });
    }
}

/// Dispatch everything strictly before `bound`, one timestamp cohort at
/// a time, in key order; cross-shard sends are staged into `outbox`.
/// Returns the earliest still-pending local time (`u64::MAX` when the
/// calendar drained), so the caller can skip the next window's
/// dispatch — and these O(wheel-horizon) peeks — outright when nothing
/// new arrives.
pub(crate) fn dispatch_window<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    bound: Time,
    cohort: &mut Vec<ParEntry>,
    outbox: &mut [Vec<Msg>],
) -> Result<Time, SimError> {
    loop {
        let t = match sim.queue.cal.peek_time() {
            Some(t) if t < bound => t,
            Some(t) => return Ok(t),
            None => return Ok(u64::MAX),
        };
        cohort.clear();
        while sim.queue.cal.peek_time() == Some(t) {
            let (_, e) = sim.queue.cal.pop().expect("peeked nonempty");
            cohort.push(e);
        }
        cohort.sort_unstable_by(|a, b| cmp_key(&a.key, &b.key));
        let mut i = 0;
        while i < cohort.len() {
            let entry = cohort[i].clone();
            debug_assert!(t >= sim.now, "time went backwards");
            sim.now = t;
            sim.events_processed += 1;
            sim.queue.begin_dispatch(t, entry.key, &entry.ev);
            if P::COUNTERS {
                sim.probe.tick(t, sim.slab.live());
            }
            if P::TIMING {
                let phase = crate::sim::phase_of(&entry.ev);
                let t0 = std::time::Instant::now();
                sim.dispatch(entry.ev);
                sim.probe.phase_time(phase, t0.elapsed().as_nanos() as u64);
            } else {
                sim.dispatch(entry.ev);
            }
            if let Some(err) = sim.invariant_err.take() {
                return Err(err);
            }
            // Zero-delay events join the cohort tail in schedule
            // order — the exact sequential FIFO position.
            cohort.append(&mut sim.queue.same_time);
            // Convert cross-shard sends while their packet ids are
            // still fresh (no later dispatch may recycle the slot).
            let tracing = sim.cfg.trace_first_packets > 0;
            for pc in sim.queue.pending.drain(..) {
                let kind = match pc.ev {
                    Ev::SwHeaderArrive { sw, port, vl, pkt } => {
                        let trace_slot = if tracing {
                            sim.trace_slots
                                .get(pkt as usize)
                                .copied()
                                .unwrap_or(u32::MAX)
                        } else {
                            u32::MAX
                        };
                        let wl_msg = match sim.wl.as_deref() {
                            Some(w) => w.wl_msg[pkt as usize],
                            None => u32::MAX,
                        };
                        MsgKind::Arrive {
                            sw,
                            port,
                            vl,
                            packet: sim.slab.remove(pkt),
                            trace_slot,
                            wl_msg,
                        }
                    }
                    Ev::CreditToSwitch { sw, port, vl } => MsgKind::Credit { sw, port, vl },
                    Ev::WlArm { node, msg } => MsgKind::Arm { node, msg },
                    _ => unreachable!("non-crossing event staged as cross-shard"),
                };
                outbox[pc.dst as usize].push(Msg {
                    at: pc.at,
                    key: pc.key,
                    kind,
                });
            }
            i += 1;
        }
    }
}

/// Flush the window's cross-shard sends into the opposite-parity lane
/// sides; returns the earliest fire time put in flight (`u64::MAX` when
/// nothing was sent) — the shard's contribution to the global
/// next-event time — and the number of messages published.
fn flush_outbox(
    me: usize,
    parity: usize,
    outbox: &mut [Vec<Msg>],
    lanes: &[Vec<MailLane>],
) -> (Time, u64) {
    let mut min_at = u64::MAX;
    let mut sent = 0u64;
    for (dst, staged) in outbox.iter_mut().enumerate() {
        if staged.is_empty() {
            continue;
        }
        for m in staged.iter() {
            min_at = min_at.min(m.at);
        }
        sent += staged.len() as u64;
        lanes[me][dst].publish(parity ^ 1, staged);
    }
    (min_at, sent)
}

/// One worker, pattern and workload mode alike: drain inbound lanes,
/// dispatch the window, flush outbound lanes, post the local next-event
/// time, barrier; repeat until the horizon or global quiescence.
///
/// Both termination conditions fall out of the agreed global next-event
/// time `g`: a pattern run ends when the bound (or `g`) reaches the
/// wall-clock horizon, a workload run passes `WL_HORIZON` as its
/// horizon and ends when `g` overtakes it — which, with no event ever
/// scheduled that far, means every calendar is drained and nothing is
/// in flight, in the same window on every shard.
fn run_shard<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    me: usize,
    shards: usize,
    lanes: &[Vec<MailLane>],
    sync: &WindowSync,
    mut tel: Option<&mut ShardTelemetry>,
) -> Result<(), ShardAbort> {
    let w = sim.cfg.lookahead_ns();
    let horizon = sim.sim_time_ns;
    let adaptive = matches!(sim.cfg.window_policy, WindowPolicy::Adaptive);
    let mut cohort: Vec<ParEntry> = Vec::new();
    let mut inbound: Vec<Msg> = Vec::new();
    let mut outbox: Vec<Vec<Msg>> = (0..shards).map(|_| Vec::new()).collect();
    let mut parity = 0usize;
    let mut prev_bound: Time = 0;
    let mut bound = w.min(horizon);
    // Earliest pending local event (`u64::MAX` = drained calendar);
    // stays valid across windows the fast path skips.
    let mut next_local = sim.queue.cal.peek_time().unwrap_or(u64::MAX);
    loop {
        let drained = drain_inbound(sim, me, prev_bound, parity, lanes, &mut inbound);
        // Empty-window fast path: nothing arrived and nothing local
        // fires before the bound — skip the dispatch (and its
        // calendar scans) outright.
        let mut in_flight_min = u64::MAX;
        let mut sent = 0u64;
        let events_before = sim.events_processed;
        let dispatched = drained > 0 || next_local < bound;
        if dispatched {
            next_local = match dispatch_window(sim, bound, &mut cohort, &mut outbox) {
                Ok(t) => t,
                Err(err) => {
                    // Release the peers parked at the barrier; the
                    // driver reports this shard's error.
                    sync.gate.abort();
                    return Err(ShardAbort::Invariant(err));
                }
            };
            (in_flight_min, sent) = flush_outbox(me, parity, &mut outbox, lanes);
        }
        // Relaxed suffices: the gate's internal mutex orders every
        // store before the barrier against every load after it.
        sync.next_min[me][parity ^ 1].store(next_local.min(in_flight_min), Ordering::Relaxed);
        // Time the barrier only when telemetry asked for it: the
        // Instant reads never influence simulation state, and the plain
        // path keeps its syscall-free wait.
        if let Some(t) = tel.as_mut() {
            let t0 = std::time::Instant::now();
            sync.gate.wait()?;
            t.on_window(
                WindowRecord {
                    bound_ns: bound,
                    span_ns: bound - prev_bound,
                    events: sim.events_processed - events_before,
                    msgs_sent: sent,
                    msgs_recv: drained as u64,
                    barrier_wait_ns: t0.elapsed().as_nanos() as u64,
                    bridge_wait_ns: 0,
                },
                dispatched,
            );
        } else {
            sync.gate.wait()?;
        }
        let g = sync
            .next_min
            .iter()
            .map(|s| s[parity ^ 1].load(Ordering::Relaxed))
            .min()
            .expect("at least one shard");
        // Done when this window reached the horizon or nothing
        // anywhere (pending or in flight) fires before it. Every shard
        // computes the same `g`, so all of them break in this window.
        if bound >= horizon || g >= horizon {
            break;
        }
        debug_assert!(g >= bound, "next-event time below the dispatched bound");
        prev_bound = bound;
        bound = if adaptive {
            // Jump to the end of the window containing `g`: whole
            // multiples of the lookahead, so a quiet stretch costs one
            // barrier instead of one per lookahead. Sound because every
            // remaining event and message fires at or after `g`, and a
            // message sent by a dispatch at `t >= g` lands at
            // `t + w >= (g / w + 1) * w` — never inside this window.
            (g / w).saturating_add(1).saturating_mul(w).min(horizon)
        } else {
            bound.saturating_add(w).min(horizon)
        };
        parity ^= 1;
    }
    Ok(finish_shard(sim, sync)?)
}

/// Agree on the global last dispatch time, then close out the probe
/// exactly as the sequential engine's `finish` does.
fn finish_shard<P: Probe>(
    sim: &mut Simulator<'_, P, ShardQueue>,
    sync: &WindowSync,
) -> Result<(), GateAborted> {
    sync.last_now.fetch_max(sim.now, Ordering::SeqCst);
    sync.gate.wait()?;
    if P::COUNTERS || P::TIMING {
        let end = sync.last_now.load(Ordering::SeqCst);
        sim.probe.finish(end);
    }
    Ok(())
}

/// Run every shard engine to completion on its own thread. A worker
/// panic trips the gate (releasing every peer) and surfaces as
/// [`SimError::WorkerPanicked`]; an engine invariant violation does the
/// same but surfaces as [`SimError::EngineInvariant`]. Otherwise the
/// finished engines come
/// back in shard order, each paired with its telemetry (when `tels`
/// supplied one — pass `None`s to run untelemetered).
#[allow(clippy::type_complexity)]
fn run_shards<'n, P: Probe + Send>(
    sims: Vec<Simulator<'n, P, ShardQueue>>,
    shards: usize,
    lanes: &[Vec<MailLane>],
    sync: &WindowSync,
    tels: Vec<Option<ShardTelemetry>>,
) -> Result<Vec<(Simulator<'n, P, ShardQueue>, Option<ShardTelemetry>)>, SimError> {
    let mut done = Vec::with_capacity(shards);
    let mut failed: Option<SimError> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = sims
            .into_iter()
            .zip(tels)
            .enumerate()
            .map(|(me, (mut sim, mut tel))| {
                scope.spawn(move || {
                    let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        run_shard(&mut sim, me, shards, lanes, sync, tel.as_mut())
                    }));
                    match run {
                        Ok(Ok(())) => Ok((sim, tel)),
                        // Released by a peer's abort; unwound cleanly.
                        Ok(Err(ShardAbort::Gate)) => Err(None),
                        // This shard's engine tripped an invariant; the
                        // gate was aborted on the way out.
                        Ok(Err(ShardAbort::Invariant(err))) => Err(Some(err)),
                        Err(payload) => {
                            sync.gate.abort();
                            Err(Some(SimError::WorkerPanicked(panic_message(
                                payload.as_ref(),
                            ))))
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(pair)) => done.push(pair),
                Ok(Err(err)) => failed = failed.take().or(err),
                // The catch above never unwinds, but stay defensive.
                Err(payload) => {
                    failed = failed
                        .take()
                        .or_else(|| Some(SimError::WorkerPanicked(panic_message(payload.as_ref()))))
                }
            }
        }
    });
    match failed {
        Some(err) => Err(err),
        None => Ok(done),
    }
}

/// Pre-sized telemetry slots for [`run_shards`]: one per shard with its
/// device ownership filled in when enabled, all-`None` otherwise.
fn make_shard_telemetry(
    enabled: bool,
    map: &ShardMap,
    shards: usize,
) -> Vec<Option<ShardTelemetry>> {
    (0..shards as u32)
        .map(|me| {
            enabled.then(|| {
                let switches = map.sw.iter().filter(|&&s| s == me).count() as u32;
                let nodes = map.node.iter().filter(|&&s| s == me).count() as u32;
                ShardTelemetry::new(me, switches, nodes)
            })
        })
        .collect()
}

/// Everything the report merge reads from one finished shard engine —
/// the transport-generic seam between the in-process [`ParSimulator`]
/// and the multi-process driver: a worker process serializes its
/// `ShardPartial`s over the bridge and the parent feeds them through the
/// *same* [`merge_partials`] the threaded engine uses, so the two paths
/// produce bit-identical reports by construction.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShardPartial {
    pub(crate) generated: u64,
    pub(crate) dropped: u64,
    pub(crate) total_generated: u64,
    pub(crate) total_delivered: u64,
    pub(crate) delivered: u64,
    pub(crate) delivered_bytes: u64,
    pub(crate) events_processed: u64,
    pub(crate) out_of_order: u64,
    pub(crate) fault_lost: u64,
    pub(crate) fault_stalled: u64,
    pub(crate) fault_rerouted: u64,
    pub(crate) latency: LatencyStats,
    pub(crate) network_latency: LatencyStats,
    /// Per-(switch, port) link busy time, `sw * m + port` indexed over
    /// the *whole* fabric (unowned devices contribute zeros; the merge
    /// sums are disjoint because only the owning shard drives a device).
    pub(crate) sw_busy: Vec<u64>,
    /// Per-node injection-link busy time, whole fabric.
    pub(crate) node_busy: Vec<u64>,
    /// Flight-recorder events this shard recorded, per trace slot
    /// (empty when tracing is off).
    pub(crate) trace_events: Vec<Vec<(Time, crate::trace::TraceEvent)>>,
}

impl ShardPartial {
    /// Extract the mergeable fields of a finished shard engine.
    pub(crate) fn from_sim<P: Probe>(s: &Simulator<'_, P, ShardQueue>, m: usize) -> ShardPartial {
        let mut sw_busy = vec![0u64; s.switches.len() * m];
        for (sw, ports) in s.switches.iter().enumerate() {
            for (port, p) in ports.iter().enumerate() {
                sw_busy[sw * m + port] = p.busy_ns;
            }
        }
        let trace_events = if s.cfg.trace_first_packets > 0 {
            s.traces.iter().map(|tr| tr.events.clone()).collect()
        } else {
            Vec::new()
        };
        ShardPartial {
            generated: s.generated_in_window,
            dropped: s.dropped,
            total_generated: s.total_generated,
            total_delivered: s.total_delivered,
            delivered: s.delivered_in_window,
            delivered_bytes: s.delivered_bytes_in_window,
            events_processed: s.events_processed,
            out_of_order: s.out_of_order,
            fault_lost: s.faults.as_ref().map_or(0, |f| f.lost),
            fault_stalled: s.faults.as_ref().map_or(0, |f| f.stalled),
            fault_rerouted: s.faults.as_ref().map_or(0, |f| f.rerouted),
            latency: s.latency.clone(),
            network_latency: s.network_latency.clone(),
            sw_busy,
            node_busy: s.nodes.iter().map(|n| n.busy_ns).collect(),
            trace_events,
        }
    }
}

/// Fold per-shard partials into one report, reproducing the sequential
/// `report()` computation field by field. Both the threaded engine and
/// the multi-process driver call exactly this.
#[allow(clippy::too_many_arguments)]
pub(crate) fn merge_partials(
    cfg: &SimConfig,
    offered_load: f64,
    sim_time: Time,
    warmup_ns: Time,
    num_nodes: usize,
    num_sw: usize,
    m: usize,
    partials: Vec<ShardPartial>,
    gen_traces: Vec<PacketTrace>,
    wall_secs: f64,
) -> SimReport {
    let mut generated = 0u64;
    let mut dropped = 0u64;
    let mut total_generated = 0u64;
    let mut total_delivered = 0u64;
    let mut delivered = 0u64;
    let mut delivered_bytes = 0u64;
    let mut events_processed = 0u64;
    let mut out_of_order = 0u64;
    let mut fault_lost = 0u64;
    let mut fault_stalled = 0u64;
    let mut fault_rerouted = 0u64;
    let mut latency = LatencyStats::new();
    let mut network_latency = LatencyStats::new();
    let mut sw_busy = vec![0u64; num_sw * m];
    let mut node_busy = vec![0u64; num_nodes];
    for s in &partials {
        generated += s.generated;
        dropped += s.dropped;
        total_generated += s.total_generated;
        total_delivered += s.total_delivered;
        delivered += s.delivered;
        delivered_bytes += s.delivered_bytes;
        events_processed += s.events_processed;
        out_of_order += s.out_of_order;
        fault_lost += s.fault_lost;
        fault_stalled += s.fault_stalled;
        fault_rerouted += s.fault_rerouted;
        latency.merge(&s.latency);
        network_latency.merge(&s.network_latency);
        // Only the owning shard ever drives a device, so these sums
        // are disjoint and exact.
        for (i, &b) in s.sw_busy.iter().enumerate() {
            sw_busy[i] += b;
        }
        for (n, &b) in s.node_busy.iter().enumerate() {
            node_busy[n] += b;
        }
    }

    let span = sim_time as f64;
    let mut total_busy = 0u64;
    let mut max_busy = 0u64;
    for &b in sw_busy.iter().chain(node_busy.iter()) {
        total_busy += b;
        max_busy = max_busy.max(b);
    }
    let links = (sw_busy.len() + node_busy.len()) as u64;

    let link_utilization = cfg.collect_link_stats.then(|| {
        let mut out = Vec::new();
        for sw in 0..num_sw {
            for port in 0..m {
                out.push(crate::metrics::LinkUse {
                    from: format!("S{sw}"),
                    port: port as u8 + 1,
                    utilization: sw_busy[sw * m + port] as f64 / span,
                });
            }
        }
        for (n, &b) in node_busy.iter().enumerate() {
            out.push(crate::metrics::LinkUse {
                from: format!("N{n}"),
                port: 1,
                utilization: b as f64 / span,
            });
        }
        out
    });

    let traces = (cfg.trace_first_packets > 0).then(|| {
        let mut out = gen_traces;
        for (slot, tr) in out.iter_mut().enumerate() {
            for s in &partials {
                tr.events.extend_from_slice(&s.trace_events[slot]);
            }
            // Stable by-time sort: same-time events of one packet are
            // always same-shard (a crossing costs a wire flight), so
            // per-shard append order — the dispatch order — survives.
            tr.events.sort_by_key(|e| e.0);
        }
        out
    });

    let window = (sim_time - warmup_ns) as f64;
    SimReport {
        offered_load,
        sim_time_ns: sim_time,
        warmup_ns,
        generated,
        dropped,
        total_generated,
        total_delivered,
        delivered,
        delivered_bytes,
        // The slab identity: every generated packet stays live until
        // delivered or dropped. Summing shard slabs would miss
        // packets parked in mailboxes at the horizon.
        in_flight_at_end: total_generated - total_delivered - dropped,
        accepted_bytes_per_ns_per_node: delivered_bytes as f64 / window / num_nodes as f64,
        offered_bytes_per_ns_per_node: cfg.packet_bytes as f64 / cfg.interarrival_ns(offered_load),
        latency,
        network_latency,
        events_processed,
        events_per_sec: if wall_secs > 0.0 {
            events_processed as f64 / wall_secs
        } else {
            0.0
        },
        packets_per_sec: if wall_secs > 0.0 {
            total_delivered as f64 / wall_secs
        } else {
            0.0
        },
        mean_link_utilization: total_busy as f64 / (links as f64 * span),
        max_link_utilization: max_busy as f64 / span,
        link_utilization,
        traces,
        out_of_order,
        fault_lost,
        fault_stalled,
        fault_rerouted,
    }
}

/// The parallel discrete-event engine: same inputs, same report, N
/// worker threads (see the module docs). `threads <= 1`, a zero
/// lookahead, or a single-switch fabric fall back to the sequential
/// [`Simulator`] — byte-identical by definition.
///
/// ```
/// use ibfat_topology::{Network, TreeParams};
/// use ibfat_routing::{Routing, RoutingKind};
/// use ibfat_sim::{ParSimulator, SimConfig, Simulator, TrafficPattern};
///
/// let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
/// let routing = Routing::build(&net, RoutingKind::Mlid);
/// let cfg = SimConfig::paper(2);
/// let par = ParSimulator::new(
///     &net, &routing, cfg.clone(), TrafficPattern::Uniform, 0.3, 50_000, 0, 2,
/// );
/// let seq = Simulator::new(
///     &net, &routing, cfg, TrafficPattern::Uniform, 0.3, 50_000, 0,
/// );
/// let mut par_report = par.run().expect("no worker panicked");
/// let mut seq_report = seq.run();
/// // Wall-clock throughput fields are the only nondeterministic ones.
/// par_report.events_per_sec = 0.0;
/// seq_report.events_per_sec = 0.0;
/// par_report.packets_per_sec = 0.0;
/// seq_report.packets_per_sec = 0.0;
/// assert_eq!(par_report, seq_report);
/// ```
pub struct ParSimulator<'a, P: ParProbe = NoopProbe> {
    net: &'a Network,
    routing: &'a Routing,
    cfg: SimConfig,
    pattern: TrafficPattern,
    offered_load: f64,
    sim_time_ns: Time,
    warmup_ns: Time,
    threads: usize,
    probe: P,
    telemetry: bool,
}

impl<'a> ParSimulator<'a> {
    /// An unprobed parallel simulator over `threads` workers.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
        threads: usize,
    ) -> ParSimulator<'a> {
        ParSimulator::with_probe(
            net,
            routing,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            threads,
            NoopProbe,
        )
    }

    /// An unprobed parallel workload driver: same sharding and window
    /// discipline as [`ParSimulator::new`], but runs a message DAG to
    /// completion instead of a wall-clock horizon (see
    /// [`run_workload`](ParSimulator::run_workload)).
    pub fn for_workload(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        threads: usize,
    ) -> ParSimulator<'a> {
        ParSimulator::with_probe(
            net,
            routing,
            cfg,
            TrafficPattern::Uniform, // unused: workload mode never samples
            1.0,
            crate::workload::WL_HORIZON,
            0,
            threads,
            NoopProbe,
        )
    }
}

impl<'a, P: ParProbe> ParSimulator<'a, P> {
    /// A parallel simulator observed by `probe`; the probe forks one
    /// child per shard and absorbs them at the end (see [`ParProbe`]).
    #[allow(clippy::too_many_arguments)]
    pub fn with_probe(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        pattern: TrafficPattern,
        offered_load: f64,
        sim_time_ns: Time,
        warmup_ns: Time,
        threads: usize,
        probe: P,
    ) -> ParSimulator<'a, P> {
        ParSimulator {
            net,
            routing,
            cfg,
            pattern,
            offered_load,
            sim_time_ns,
            warmup_ns,
            threads,
            probe,
            telemetry: false,
        }
    }

    /// A probed parallel workload driver: [`ParSimulator::for_workload`]
    /// with an observer attached (forked per shard, absorbed at the end).
    pub fn for_workload_observed(
        net: &'a Network,
        routing: &'a Routing,
        cfg: SimConfig,
        threads: usize,
        probe: P,
    ) -> ParSimulator<'a, P> {
        ParSimulator::with_probe(
            net,
            routing,
            cfg,
            TrafficPattern::Uniform, // unused: workload mode never samples
            1.0,
            crate::workload::WL_HORIZON,
            0,
            threads,
            probe,
        )
    }

    /// Toggle engine self-telemetry (see [`EngineTelemetry`]). Off by
    /// default; when on, each worker records per-window engine behavior
    /// (chosen window sizes, barrier waits, mailbox volume) retrievable
    /// via [`run_telemetry`](ParSimulator::run_telemetry) or
    /// [`run_observed_telemetry`](ParSimulator::run_observed_telemetry).
    /// The simulation result is bit-identical either way.
    pub fn with_telemetry(mut self, on: bool) -> ParSimulator<'a, P> {
        self.telemetry = on;
        self
    }

    /// Worker count after feasibility clamps (1 = sequential fallback).
    pub fn effective_threads(&self) -> usize {
        if self.cfg.lookahead_ns() == 0 || self.net.num_switches() < 2 {
            return 1;
        }
        self.threads.clamp(1, self.net.num_switches())
    }

    /// Switch-to-switch cables cut by the shard partition this run
    /// would use — the cross-shard synchronization-traffic metric
    /// (0 when the run falls back to the sequential engine).
    pub fn partition_edge_cut(&self) -> usize {
        let shards = self.effective_threads();
        if shards <= 1 {
            return 0;
        }
        ShardMap::build(self.net, shards, self.cfg.partition).edge_cut
    }

    /// Run to completion and produce the report. Fails only if a worker
    /// thread panicked ([`SimError::WorkerPanicked`]).
    pub fn run(self) -> Result<SimReport, SimError> {
        Ok(self.run_observed()?.0)
    }

    /// Run to completion; return the report and the merged probe.
    pub fn run_observed(self) -> Result<(SimReport, P), SimError> {
        let (report, probe, _) = self.run_full()?;
        Ok((report, probe))
    }

    /// Run with engine self-telemetry on; return the report and the
    /// telemetry. The report is bit-identical to an untelemetered run.
    pub fn run_telemetry(mut self) -> Result<(SimReport, EngineTelemetry), SimError> {
        self.telemetry = true;
        let (report, _, tel) = self.run_full()?;
        Ok((report, tel))
    }

    /// Run with engine self-telemetry on; return report, merged probe,
    /// and telemetry.
    pub fn run_observed_telemetry(mut self) -> Result<(SimReport, P, EngineTelemetry), SimError> {
        self.telemetry = true;
        self.run_full()
    }

    /// The one pattern-mode engine behind every `run_*` entry point.
    fn run_full(self) -> Result<(SimReport, P, EngineTelemetry), SimError> {
        let shards = self.effective_threads();
        if shards <= 1 {
            let lookahead = self.cfg.lookahead_ns();
            let (report, probe) = Simulator::with_probe(
                self.net,
                self.routing,
                self.cfg,
                self.pattern,
                self.offered_load,
                self.sim_time_ns,
                self.warmup_ns,
                self.probe,
            )
            .try_run_observed()?;
            return Ok((report, probe, EngineTelemetry::sequential(lookahead)));
        }
        let wall_start = std::time::Instant::now();
        let (mut scripts, gen_traces) = injection_prepass(
            self.net,
            self.routing,
            &self.cfg,
            &self.pattern,
            self.offered_load,
            self.sim_time_ns,
            self.warmup_ns,
            None,
        );
        let map = Arc::new(ShardMap::build(self.net, shards, self.cfg.partition));
        let num_nodes = self.net.num_nodes();

        let mut sims: Vec<Simulator<'a, P, ShardQueue>> = Vec::with_capacity(shards);
        for me in 0..shards as u32 {
            let queue = ShardQueue::new(me, map.clone(), &self.cfg);
            let mut sim = Simulator::with_queue(
                self.net,
                self.routing,
                self.cfg.clone(),
                self.pattern.clone(),
                self.offered_load,
                self.sim_time_ns,
                self.warmup_ns,
                queue,
                self.probe.fork(),
            );
            sim.traces = gen_traces.clone();
            let mut script: Vec<VecDeque<InjectRec>> =
                (0..num_nodes).map(|_| VecDeque::new()).collect();
            for node in 0..num_nodes {
                if map.node[node] == me {
                    script[node] = std::mem::take(&mut scripts[node]);
                }
            }
            for (node, s) in script.iter().enumerate() {
                if let Some(first) = s.front() {
                    sim.queue.cal.schedule(
                        first.at,
                        ParEntry {
                            key: EvKey::initial(node as u32),
                            ev: Ev::Inject { node: node as u32 },
                        },
                    );
                }
            }
            sim.scripted_inj = Some(script);
            schedule_fault_entries(&mut sim, &map, me);
            sims.push(sim);
        }

        let lanes: Vec<Vec<MailLane>> = (0..shards)
            .map(|_| (0..shards).map(|_| MailLane::new()).collect())
            .collect();
        let sync = WindowSync::new(shards);
        let tels = make_shard_telemetry(self.telemetry, &map, shards);
        let done = run_shards(sims, shards, &lanes, &sync, tels)?;
        let wall = wall_start.elapsed().as_secs_f64();
        let (engines, tels): (Vec<_>, Vec<_>) = done.into_iter().unzip();
        let telemetry = EngineTelemetry {
            threads: shards,
            lookahead_ns: self.cfg.lookahead_ns(),
            edge_cut: map.edge_cut,
            shards: tels.into_iter().flatten().collect(),
        };
        let (report, probe) = self.merge(engines, gen_traces, wall);
        Ok((report, probe, telemetry))
    }

    /// Fold the finished shards into one report + probe, reproducing the
    /// sequential `report()` computation field by field (through the
    /// transport-generic [`ShardPartial`] seam the multi-process driver
    /// shares, so the two paths cannot drift).
    fn merge(
        self,
        shards: Vec<Simulator<'a, P, ShardQueue>>,
        gen_traces: Vec<PacketTrace>,
        wall_secs: f64,
    ) -> (SimReport, P) {
        let m = self.net.params().m() as usize;
        let partials: Vec<ShardPartial> = shards
            .iter()
            .map(|s| ShardPartial::from_sim(s, m))
            .collect();
        let report = merge_partials(
            &self.cfg,
            self.offered_load,
            self.sim_time_ns,
            self.warmup_ns,
            self.net.num_nodes(),
            self.net.num_switches(),
            m,
            partials,
            gen_traces,
            wall_secs,
        );
        let mut probe = self.probe;
        for s in shards {
            crate::sim::recycle_queues(s.switches, s.nodes);
            probe.absorb(s.probe);
        }
        (report, probe)
    }

    /// Drive `wl` to completion across the shards and report. Bit-equal
    /// to [`Simulator::run_workload`] at any thread count. Fails only
    /// if a worker thread panicked ([`SimError::WorkerPanicked`]).
    pub fn run_workload(self, wl: &crate::Workload) -> Result<crate::WorkloadReport, SimError> {
        Ok(self.run_workload_observed(wl)?.0)
    }

    /// Drive `wl` to completion; return the report and the merged probe.
    ///
    /// Workload mode needs no injection pre-pass: all randomness was
    /// drawn at build time ([`wl_check`](crate::workload) rejects the
    /// rest), so the shards only exchange link events and fly-delayed
    /// [`Ev::WlArm`] completion notifications. The run ends when the
    /// agreed global next-event time passes the (unreachable) workload
    /// horizon — i.e. every calendar is drained and nothing is in
    /// flight — in the same window on every shard (see [`run_shard`]).
    pub fn run_workload_observed(
        self,
        wl: &crate::Workload,
    ) -> Result<(crate::WorkloadReport, P), SimError> {
        crate::workload::check_workload_faults(&self.cfg);
        let shards = self.effective_threads();
        if shards <= 1 {
            return Simulator::for_workload_observed(
                self.net,
                self.routing,
                self.cfg,
                wl,
                self.probe,
            )
            .try_run_workload_observed();
        }
        let wall_start = std::time::Instant::now();
        let map = Arc::new(ShardMap::build(self.net, shards, self.cfg.partition));
        let num_nodes = self.net.num_nodes();

        let mut sims: Vec<Simulator<'a, P, ShardQueue>> = Vec::with_capacity(shards);
        for me in 0..shards as u32 {
            let queue = ShardQueue::new(me, map.clone(), &self.cfg);
            let mut sim = Simulator::with_queue(
                self.net,
                self.routing,
                self.cfg.clone(),
                TrafficPattern::Uniform,
                1.0,
                crate::workload::WL_HORIZON,
                0,
                queue,
                self.probe.fork(),
            );
            sim.wl_install(wl);
            // Prime the DAG roots of owned nodes. The initial keys sort
            // node-major then per-node root order — the exact sequence
            // the sequential engine's FIFO priming produces.
            for node in 0..num_nodes as u32 {
                if map.node[node as usize] != me {
                    continue;
                }
                let roots = std::mem::take(
                    &mut sim.wl.as_mut().expect("installed").roots_by_node[node as usize],
                );
                for (j, &msg) in roots.iter().enumerate() {
                    sim.queue.cal.schedule(
                        0,
                        ParEntry {
                            key: EvKey::initial_seq(node, j as u32),
                            ev: Ev::WlArm { node, msg },
                        },
                    );
                }
                sim.wl.as_mut().expect("installed").roots_by_node[node as usize] = roots;
            }
            schedule_fault_entries(&mut sim, &map, me);
            sims.push(sim);
        }

        let lanes: Vec<Vec<MailLane>> = (0..shards)
            .map(|_| (0..shards).map(|_| MailLane::new()).collect())
            .collect();
        let sync = WindowSync::new(shards);
        let tels = make_shard_telemetry(false, &map, shards);
        let done = run_shards(sims, shards, &lanes, &sync, tels)?;
        let _ = wall_start.elapsed();
        let engines: Vec<_> = done.into_iter().map(|(sim, _)| sim).collect();
        Ok(self.merge_workload(engines, &map))
    }

    /// Stitch the per-shard timing tables into one report. Ownership
    /// decides which shard holds the authoritative stamp for each field:
    /// arm/inject happen on the shard owning the message's *source*
    /// node, delivery on the shard owning its *destination*.
    fn merge_workload(
        self,
        shards: Vec<Simulator<'a, P, ShardQueue>>,
        map: &ShardMap,
    ) -> (crate::WorkloadReport, P) {
        let model = &shards[0].wl.as_ref().expect("installed").wl;
        let mut timings = Vec::with_capacity(model.messages.len());
        for (m, msg) in model.messages.iter().enumerate() {
            let src_sh = map.node[msg.src.index()] as usize;
            let dst_sh = map.node[msg.dst.index()] as usize;
            let s = shards[src_sh].wl.as_ref().expect("installed").timings[m];
            let d = shards[dst_sh].wl.as_ref().expect("installed").timings[m];
            timings.push(crate::MessageTiming {
                armed_ns: s.armed_ns,
                injected_ns: s.injected_ns,
                completed_ns: d.completed_ns,
            });
        }
        let mut completed = 0u64;
        let mut events = 0u64;
        let mut dropped = 0u64;
        for s in &shards {
            completed += s.wl.as_ref().expect("installed").completed;
            events += s.events_processed;
            dropped += s.dropped;
        }
        assert_eq!(
            completed,
            model.messages.len() as u64,
            "workload stalled: {} of {} messages completed ({} packets dropped in the fabric)",
            completed,
            model.messages.len(),
            dropped
        );
        let report =
            crate::WorkloadReport::build(model, timings, u64::from(self.cfg.packet_bytes), events);
        let mut probe = self.probe;
        for s in shards {
            crate::sim::recycle_queues(s.switches, s.nodes);
            probe.absorb(s.probe);
        }
        (report, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_keys_sort_before_any_dispatched_child() {
        use std::cmp::Ordering;
        let init = EvKey::initial(7);
        // A child scheduled at t=0 by the very first dispatch has a
        // parent, so priming events win the tie at t=0.
        let child = Arc::new(EvKey {
            sched: 0,
            tb: 0,
            parent: Some(EvKey::initial(0)),
        });
        assert_eq!(cmp_key(&init, &child), Ordering::Less);
        // And node order breaks ties among priming events.
        assert_eq!(
            cmp_key(&EvKey::initial(3), &EvKey::initial(7)),
            Ordering::Less
        );
    }

    #[test]
    fn lineage_walk_orders_by_the_parents_dispatch_order() {
        use std::cmp::Ordering;
        // Two children scheduled at the same instant by different
        // parents: the parent scheduled earlier dispatched first
        // sequentially, so its child sorts first — regardless of the
        // children's own tb.
        // One shared root, as in a real run: every key is created once.
        let root = EvKey::initial(0);
        let parent = |sched: Time, tb: u64| {
            Arc::new(EvKey {
                sched,
                tb,
                parent: Some(root.clone()),
            })
        };
        let child = |p: &Arc<EvKey>, tb: u64| {
            Arc::new(EvKey {
                sched: 500,
                tb,
                parent: Some(p.clone()),
            })
        };
        let (early, late) = (parent(100, 9), parent(400, 1));
        assert_eq!(cmp_key(&child(&early, 7), &child(&late, 2)), Ordering::Less);
        // Same parent *instant* but different call counters: the parent
        // scheduled by the earlier call dispatched first.
        let (first, second) = (parent(400, 1), parent(400, 2));
        assert_eq!(
            cmp_key(&child(&first, 9), &child(&second, 0)),
            Ordering::Less
        );
        // Same parent: the children's own program order decides.
        assert_eq!(
            cmp_key(&child(&first, 0), &child(&first, 1)),
            Ordering::Less
        );
    }

    #[test]
    fn shard_map_is_total_and_balanced() {
        use ibfat_topology::TreeParams;
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        let shards = 4;
        for kind in [PartitionKind::Block, PartitionKind::FatTree] {
            let map = ShardMap::build(&net, shards, kind);
            assert_eq!(map.sw.len(), net.num_switches());
            assert_eq!(map.node.len(), net.num_nodes());
            for &s in map.sw.iter().chain(map.node.iter()) {
                assert!((s as usize) < shards);
            }
            // Every shard owns at least one switch.
            for want in 0..shards as u32 {
                assert!(
                    map.sw.contains(&want),
                    "{kind:?}: shard {want} owns no switch"
                );
            }
            // Nodes are co-located with their leaf switch.
            for n in 0..net.num_nodes() {
                let peer = net
                    .peer_of(DeviceRef::Node(NodeId(n as u32)), PortNum(1))
                    .expect("intact fabric");
                match peer.device {
                    DeviceRef::Switch(sw) => {
                        assert_eq!(map.node[n], map.sw[sw.0 as usize]);
                    }
                    DeviceRef::Node(_) => unreachable!(),
                }
            }
        }
        // The topology-aware partition cuts no more cables than the
        // block split on the paper's fabric.
        let block = ShardMap::build(&net, shards, PartitionKind::Block);
        let fat = ShardMap::build(&net, shards, PartitionKind::FatTree);
        assert!(fat.edge_cut <= block.edge_cut);
    }

    #[test]
    fn mail_lane_publishes_takes_and_fast_paths() {
        let lane = MailLane::new();
        let credit = |at: Time| Msg {
            at,
            key: EvKey::initial(0),
            kind: MsgKind::Credit {
                sw: 0,
                port: 1,
                vl: 0,
            },
        };
        let mut scratch: Vec<Msg> = Vec::new();
        // Nothing published: the flag check says so without locking.
        assert!(!lane.take(0, &mut scratch));
        let mut staged = vec![credit(7), credit(9)];
        lane.publish(0, &mut staged);
        // The sender got the parked (empty) buffer back.
        assert!(staged.is_empty());
        assert!(lane.take(0, &mut scratch));
        assert_eq!(scratch.iter().map(|m| m.at).collect::<Vec<_>>(), vec![7, 9]);
        scratch.clear();
        // The flag was consumed: a second take is the empty fast path.
        assert!(!lane.take(0, &mut scratch));
        // The other parity side is independent.
        staged.push(credit(11));
        lane.publish(1, &mut staged);
        assert!(!lane.take(0, &mut scratch));
        assert!(lane.take(1, &mut scratch));
        assert_eq!(scratch.len(), 1);
    }

    #[test]
    fn sync_gate_rendezvous_generations() {
        let gate = SyncGate::new(2);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                for _ in 0..100 {
                    assert!(gate.wait().is_ok());
                }
            });
            for _ in 0..100 {
                assert!(gate.wait().is_ok());
            }
            worker.join().unwrap();
        });
    }

    #[test]
    fn sync_gate_abort_releases_parked_waiters() {
        let gate = SyncGate::new(2);
        std::thread::scope(|scope| {
            // The waiter parks (the gate needs 2); the abort must
            // release it with an error whether it arrives before or
            // after the park.
            let waiter = scope.spawn(|| gate.wait().is_err());
            std::thread::sleep(std::time::Duration::from_millis(10));
            gate.abort();
            assert!(waiter.join().unwrap());
        });
        // Every later wait fails fast.
        assert!(gate.wait().is_err());
    }

    #[test]
    fn worker_panic_surfaces_as_sim_error() {
        use ibfat_routing::RoutingKind;
        use ibfat_topology::TreeParams;
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        // An impossible workload reference would panic deep in a
        // handler; simulate the failure mode directly instead: a probe
        // that panics mid-run on a worker thread.
        #[derive(Debug)]
        struct Bomb;
        impl Probe for Bomb {
            const COUNTERS: bool = true;
            const TIMING: bool = false;
            fn tick(&mut self, _now: Time, _live: usize) {
                panic!("probe bomb");
            }
        }
        impl ParProbe for Bomb {
            fn fork(&self) -> Self {
                Bomb
            }
            fn absorb(&mut self, _child: Self) {}
        }
        let err = ParSimulator::with_probe(
            &net,
            &routing,
            SimConfig::paper(1),
            TrafficPattern::Uniform,
            0.3,
            20_000,
            0,
            2,
            Bomb,
        )
        .run_observed()
        .expect_err("the probe panicked on every worker");
        match err {
            SimError::WorkerPanicked(msg) => assert!(msg.contains("probe bomb"), "{msg}"),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn panicked_run_leaves_the_engine_reusable() {
        use ibfat_routing::RoutingKind;
        use ibfat_topology::TreeParams;
        let net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let routing = Routing::build(&net, RoutingKind::Mlid);
        let cfg = SimConfig::paper(2);
        let spec = crate::RunSpec::new(0.4, 20_000);
        // A probe that detonates only after the engine has dispatched
        // real traffic, so the unwinding workers abandon queues with
        // live buffers in them — the exact state that would poison the
        // thread-local `QueuePool` freelists if a panicked run returned
        // dirty buffers.
        #[derive(Debug)]
        struct LateBomb {
            ticks: u32,
        }
        impl Probe for LateBomb {
            const COUNTERS: bool = true;
            const TIMING: bool = false;
            fn tick(&mut self, _now: Time, _live: usize) {
                self.ticks += 1;
                if self.ticks > 50 {
                    panic!("late probe bomb");
                }
            }
        }
        impl ParProbe for LateBomb {
            fn fork(&self) -> Self {
                LateBomb { ticks: 0 }
            }
            fn absorb(&mut self, _child: Self) {}
        }
        let err = ParSimulator::with_probe(
            &net,
            &routing,
            cfg.clone(),
            TrafficPattern::Uniform,
            spec.offered_load,
            spec.sim_time_ns,
            spec.warmup_ns,
            2,
            LateBomb { ticks: 0 },
        )
        .run_observed()
        .expect_err("the probe panicked mid-run");
        assert!(matches!(err, SimError::WorkerPanicked(_)), "{err:?}");
        // The same process must still run clean — and bit-identical to
        // the sequential engine, which shares the freelists a corrupt
        // buffer would poison.
        let seq = crate::run_once(&net, &routing, cfg.clone(), TrafficPattern::Uniform, spec);
        for threads in [1usize, 2, 4] {
            let par = crate::try_run_once_par(
                &net,
                &routing,
                cfg.clone(),
                TrafficPattern::Uniform,
                spec,
                threads,
            )
            .expect("the panicked run must not poison later runs");
            let (mut par, mut want) = (par, seq.clone());
            par.events_per_sec = 0.0;
            par.packets_per_sec = 0.0;
            want.events_per_sec = 0.0;
            want.packets_per_sec = 0.0;
            assert_eq!(
                par, want,
                "divergence after a panicked run at {threads} threads"
            );
        }
    }

    proptest::proptest! {
        /// Model check of the adaptive window arithmetic: replaying the
        /// engine's bound rule over arbitrary event cascades, no
        /// cross-shard send ever lands inside the window that sent it,
        /// no drained message fires before the previous bound, and
        /// bounds advance monotonically in whole lookahead multiples.
        #[test]
        fn adaptive_bounds_never_violate_the_lookahead(
            w in 1u64..64,
            seeds in proptest::collection::vec((0u64..2_000, 0u8..4), 1..32),
        ) {
            // One shard's view: pending local events `(time, hops)` and
            // messages in flight, re-delivered one window later.
            // Dispatching an event with hops left spawns a local child
            // (anywhere at or after `t`) and a cross send exactly one
            // lookahead out — the engine's schedule rules in miniature.
            let mut pending: BinaryHeap<Reverse<(u64, u8)>> =
                seeds.iter().map(|&(t, h)| Reverse((t, h))).collect();
            let mut in_flight: Vec<(u64, u8)> = Vec::new();
            let mut prev_bound = 0u64;
            let mut bound = w;
            loop {
                for &(t, h) in &in_flight {
                    proptest::prop_assert!(t >= prev_bound, "drained {t} < {prev_bound}");
                    pending.push(Reverse((t, h)));
                }
                in_flight.clear();
                while let Some(&Reverse((t, h))) = pending.peek() {
                    if t >= bound {
                        break;
                    }
                    pending.pop();
                    if h > 0 {
                        pending.push(Reverse((t + (t % w), h - 1)));
                        let at = t + w;
                        proptest::prop_assert!(at >= bound, "sent {at} inside bound {bound}");
                        in_flight.push((at, h - 1));
                    }
                }
                let g = pending
                    .peek()
                    .map(|&Reverse((t, _))| t)
                    .unwrap_or(u64::MAX)
                    .min(in_flight.iter().map(|&(t, _)| t).min().unwrap_or(u64::MAX));
                if g == u64::MAX {
                    break;
                }
                proptest::prop_assert!(g >= bound, "next-event {g} below bound {bound}");
                prev_bound = bound;
                bound = (g / w).saturating_add(1).saturating_mul(w);
                proptest::prop_assert!(bound % w == 0 && bound > prev_bound);
            }
        }
    }
}
