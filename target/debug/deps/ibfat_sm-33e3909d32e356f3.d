/root/repo/target/debug/deps/ibfat_sm-33e3909d32e356f3.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/debug/deps/libibfat_sm-33e3909d32e356f3.rmeta: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
