//! Remark 3 of the paper: the MLID advantage grows with network size.
//!
//! Sweeps the evaluated network sizes at saturation load and reports the
//! accepted traffic of both schemes under both traffic patterns.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use ib_fabric::prelude::*;

fn saturation(fabric: &Fabric, pattern: &TrafficPattern, vls: u8) -> f64 {
    fabric
        .experiment()
        .virtual_lanes(vls)
        .traffic(pattern.clone())
        .offered_load(1.0)
        .duration_ns(200_000)
        .run()
        .accepted_bytes_per_ns_per_node
}

fn main() {
    println!(
        "{:<8} {:>6} {:>10} {:>12} {:>12} {:>9}",
        "network", "nodes", "pattern", "SLID(B/ns)", "MLID(B/ns)", "MLID/SLID"
    );
    for (m, n) in [(4, 3), (8, 3), (16, 2), (32, 2)] {
        let slid = Fabric::builder(m, n)
            .routing(RoutingKind::Slid)
            .build()
            .expect("valid");
        let mlid = Fabric::builder(m, n)
            .routing(RoutingKind::Mlid)
            .build()
            .expect("valid");
        let patterns = [
            TrafficPattern::Uniform,
            TrafficPattern::paper_centric(),
            TrafficPattern::bit_complement(slid.num_nodes()),
        ];
        for pattern in &patterns {
            let s = saturation(&slid, pattern, 1);
            let ml = saturation(&mlid, pattern, 1);
            println!(
                "{:<8} {:>6} {:>10} {:>12.4} {:>12.4} {:>9.2}",
                format!("{m}x{n}"),
                slid.num_nodes(),
                pattern.name(),
                s,
                ml,
                ml / s
            );
        }
    }
    println!("\n(1 VL, offered load 1.0, 200 µs simulated per point)");
}
