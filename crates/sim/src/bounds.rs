//! Closed-form performance bounds for the simulated model.
//!
//! These are exact consequences of the timing constants and the
//! credit-based flow control with `buffer_packets`-deep buffers; the test
//! suite checks the simulator never exceeds them and approaches them in
//! the regimes where they are tight.

use crate::SimConfig;
use ibfat_topology::TreeParams;

/// Zero-load end-to-end latency (generation → last byte delivered) for a
/// source/destination pair whose greatest common prefix has length
/// `alpha`: the route crosses `2(n - alpha)` links and `2(n - alpha) - 1`
/// switches, then pays one packet serialization.
pub fn zero_load_latency_ns(params: TreeParams, cfg: &SimConfig, alpha: u32) -> u64 {
    assert!(
        alpha < params.n(),
        "alpha must be below n for distinct nodes"
    );
    let links = u64::from(2 * (params.n() - alpha));
    let switches = links - 1;
    links * cfg.fly_time_ns + switches * cfg.routing_time_ns + cfg.packet_time_ns()
}

/// The credit-loop ceiling of a single switch-to-switch hop on one VL,
/// in bytes/ns: a buffer slot is reoccupiable only every
/// `packet + routing + 2·fly` ns, and `buffer_packets` slots pipeline.
/// Never exceeds the raw link rate.
pub fn hop_credit_rate(cfg: &SimConfig) -> f64 {
    let s = cfg.packet_time_ns() as f64;
    let loop_ns = s + cfg.routing_time_ns as f64 + 2.0 * cfg.fly_time_ns as f64;
    let per_vl = s / loop_ns * f64::from(cfg.buffer_packets);
    (per_vl * f64::from(cfg.num_vls)).min(cfg.link_bytes_per_ns())
}

/// The delivery ceiling of a destination endport, bytes/ns: the final hop
/// has no routing stage, so its credit loop is `packet + 2·fly`.
pub fn sink_rate(cfg: &SimConfig) -> f64 {
    let s = cfg.packet_time_ns() as f64;
    let loop_ns = s + 2.0 * cfg.fly_time_ns as f64;
    let per_vl = s / loop_ns * f64::from(cfg.buffer_packets);
    (per_vl * f64::from(cfg.num_vls)).min(cfg.link_bytes_per_ns())
}

/// Upper bound on accepted **uniform** traffic per node (bytes/ns): the
/// minimum of the injection link, the per-hop credit ceiling, and the
/// sink ceiling. (The fat tree itself has full bisection bandwidth, so
/// links are not the binding constraint under uniform load.)
pub fn uniform_saturation_bound(cfg: &SimConfig) -> f64 {
    hop_credit_rate(cfg).min(sink_rate(cfg))
}

/// Upper bound on accepted traffic per node under a hot-spot pattern
/// where each node addresses the hot destination with probability
/// `fraction`: the hot flows share a single sink of rate [`sink_rate`],
/// and the non-hot remainder is bounded by the uniform ceiling.
///
/// `accepted ≤ min(offered_hot, sink/N) + min(offered_rest, uniform)`.
pub fn hotspot_saturation_bound(
    params: TreeParams,
    cfg: &SimConfig,
    fraction: f64,
    offered: f64,
) -> f64 {
    let nodes = f64::from(params.num_nodes());
    let hot = (offered * fraction).min(sink_rate(cfg) / nodes);
    let rest = (offered * (1.0 - fraction)).min(uniform_saturation_bound(cfg));
    hot + rest
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_latency_matches_known_values() {
        let params = TreeParams::new(4, 3).unwrap();
        let cfg = SimConfig::paper(1);
        // alpha = 0: 6 links, 5 switches: 876 ns.
        assert_eq!(zero_load_latency_ns(params, &cfg, 0), 876);
        // alpha = 2 (leaf siblings): 2 links, 1 switch: 396 ns.
        assert_eq!(zero_load_latency_ns(params, &cfg, 2), 396);
    }

    #[test]
    fn credit_rates_scale_with_vls_and_buffers() {
        let one = SimConfig::paper(1);
        let two = SimConfig::paper(2);
        assert!(hop_credit_rate(&two) > hop_credit_rate(&one));
        let mut deep = SimConfig::paper(1);
        deep.buffer_packets = 8;
        // Deep buffers saturate the link.
        assert!((hop_credit_rate(&deep) - 1.0).abs() < 1e-12);
        // 1 VL, 1 buffer: 256/396.
        assert!((hop_credit_rate(&one) - 256.0 / 396.0).abs() < 1e-12);
        assert!((sink_rate(&one) - 256.0 / 296.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_are_never_above_link_rate() {
        for vls in [1, 2, 4, 8] {
            let cfg = SimConfig::paper(vls);
            assert!(hop_credit_rate(&cfg) <= 1.0 + 1e-12);
            assert!(sink_rate(&cfg) <= 1.0 + 1e-12);
            assert!(uniform_saturation_bound(&cfg) <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn hotspot_bound_shrinks_with_network_size() {
        let cfg = SimConfig::paper(1);
        let small = TreeParams::new(4, 3).unwrap();
        let large = TreeParams::new(32, 2).unwrap();
        let b_small = hotspot_saturation_bound(small, &cfg, 0.5, 1.0);
        let b_large = hotspot_saturation_bound(large, &cfg, 0.5, 1.0);
        assert!(b_large < b_small);
    }
}
