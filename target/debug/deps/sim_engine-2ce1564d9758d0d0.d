/root/repo/target/debug/deps/sim_engine-2ce1564d9758d0d0.d: crates/bench/benches/sim_engine.rs Cargo.toml

/root/repo/target/debug/deps/libsim_engine-2ce1564d9758d0d0.rmeta: crates/bench/benches/sim_engine.rs Cargo.toml

crates/bench/benches/sim_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
