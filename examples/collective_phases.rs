//! An HPC-flavoured workload: the exchange phases of a butterfly
//! collective (allreduce / FFT-style), where phase `i` pairs every node
//! with its partner at distance `2^i`, followed by adversarial
//! permutations. The outcome is a structural result: on permutation
//! traffic the two schemes are *duals* and perform identically — the
//! multiple-LID advantage is specific to many-to-one traffic, which is
//! why the paper's evaluation centres on hot-spots.
//!
//! ```text
//! cargo run --release --example collective_phases
//! ```

use ib_fabric::prelude::*;

fn shift_permutation(num_nodes: u32, distance: u32) -> TrafficPattern {
    TrafficPattern::Permutation(
        (0..num_nodes)
            .map(|x| NodeId((x + distance) % num_nodes))
            .collect(),
    )
}

fn main() {
    let (m, n) = (8, 3);
    let slid = Fabric::builder(m, n)
        .routing(RoutingKind::Slid)
        .build()
        .expect("valid");
    let mlid = Fabric::builder(m, n)
        .routing(RoutingKind::Mlid)
        .build()
        .expect("valid");
    let nodes = slid.num_nodes();
    let phases = 32u32.ilog2() + 2; // distances 1..2^log; cap for display

    println!(
        "butterfly exchange phases on an {m}-port {n}-tree ({nodes} nodes), offered load 1.0, 1 VL\n"
    );
    println!(
        "{:<10} {:>10} {:>14} {:>14} {:>10}",
        "phase", "distance", "SLID(B/ns/nd)", "MLID(B/ns/nd)", "MLID/SLID"
    );
    for i in 0..phases.min(nodes.ilog2()) {
        let distance = 1u32 << i;
        let pattern = shift_permutation(nodes, distance);
        let acc = |fabric: &Fabric| {
            fabric
                .experiment()
                .traffic(pattern.clone())
                .offered_load(1.0)
                .duration_ns(200_000)
                .run()
                .accepted_bytes_per_ns_per_node
        };
        let (s, ml) = (acc(&slid), acc(&mlid));
        println!(
            "{:<10} {:>10} {:>14.4} {:>14.4} {:>10.2}",
            format!("{}", i),
            distance,
            s,
            ml,
            ml / s
        );
    }
    println!(
        "\nshift permutations are conflict-free under both schemes — every\n\
         phase runs at the credit-loop ceiling (256/396 ≈ 0.646 B/ns)."
    );

    // Now the adversarial permutations, where deterministic schemes differ.
    println!("\nadversarial permutations:\n");
    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "pattern", "SLID(B/ns/nd)", "MLID(B/ns/nd)", "MLID/SLID"
    );
    let patterns: Vec<(&str, TrafficPattern)> = vec![
        ("bit-complement", TrafficPattern::bit_complement(nodes)),
        ("bit-reversal", TrafficPattern::bit_reversal(nodes)),
        ("slid-adversary", slid_adversary(slid.params())),
    ];
    for (name, pattern) in patterns {
        let acc = |fabric: &Fabric| {
            fabric
                .experiment()
                .traffic(pattern.clone())
                .offered_load(1.0)
                .duration_ns(200_000)
                .run()
                .accepted_bytes_per_ns_per_node
        };
        let (s, ml) = (acc(&slid), acc(&mlid));
        println!("{:<22} {:>14.4} {:>14.4} {:>10.2}", name, s, ml, ml / s);
    }
    println!(
        "\na structural result, visible in the identical columns: on *permutation*\n\
         traffic MLID and SLID are duals. MLID climbs by source digits and\n\
         descends into (dest-prefix, source-suffix) switches; SLID climbs by\n\
         destination digits and descends purely by destination — each scheme's\n\
         ascent conflicts are the other's descent conflicts mirrored, so every\n\
         permutation costs them the same. The hand-built adversary halves SLID\n\
         through leaf up-port collisions and halves MLID through the mirrored\n\
         down-link collisions. MLID's real advantage is many-to-one traffic\n\
         (see hotspot_study), which is exactly what the paper evaluates."
    );
}

/// A permutation adversarial to SLID's d-mod-k spreading.
///
/// Co-leaf source pairs `(leaf, 2p)` and `(leaf, 2p+1)` both target
/// destinations in the *same leaf slot* `s` (the destination's last
/// digit), which is exactly SLID's spreading digit at the leaf level —
/// the two flows collide on one leaf up-port. Across the fabric, slot `s`
/// destinations are dealt bijectively to (leaf, member) pairs, so the map
/// is a genuine permutation. MLID's source-keyed up-ports keep every pair
/// apart on the climb — but pay the mirrored price on the descent (see
/// the duality discussion in `main`).
fn slid_adversary(params: TreeParams) -> TrafficPattern {
    let nodes = params.num_nodes();
    let half = params.half();
    let leaves = nodes / half;
    assert!(
        half.is_multiple_of(2) && leaves.is_multiple_of(2),
        "needs even arity"
    );
    let mut perm: Vec<Option<u32>> = vec![None; nodes as usize];
    for src_half in 0..2u32 {
        for l_rel in 0..leaves / 2 {
            let leaf = src_half * (leaves / 2) + l_rel;
            for k in 0..half {
                let (pair, member) = (k / 2, k % 2);
                // Near-half sources own slots 0..half/2; far half the rest.
                let slot = src_half * (half / 2) + pair;
                // Per-slot bijection (l_rel, member) -> destination leaf.
                let dst_leaf = (2 * l_rel + member + leaves / 2 + slot) % leaves;
                let src = leaf * half + k;
                let dst = dst_leaf * half + slot;
                assert!(perm[src as usize].replace(dst).is_none());
            }
        }
    }
    let perm: Vec<NodeId> = perm
        .into_iter()
        .map(|d| NodeId(d.expect("total map")))
        .collect();
    // Permutation sanity: every node is hit exactly once.
    let mut seen = vec![false; nodes as usize];
    for d in &perm {
        assert!(
            !std::mem::replace(&mut seen[d.index()], true),
            "not a permutation"
        );
    }
    TrafficPattern::Permutation(perm)
}
