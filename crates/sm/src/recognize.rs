//! Fat-tree recognition and label recovery.
//!
//! Given an anonymized port-accurate graph, decide whether it is an
//! `IBFT(m, n)` and recover the paper's labels. The key fact making this
//! well-posed: in the m-port n-tree wiring, an edge between a level-`l`
//! switch `t` (down-port `k`) and a level-`l+1` switch `s` (up-port `k'`)
//! satisfies
//!
//! ```text
//! s.digit(l) = k - 1            t.digit(l) = k' - m/2 - 1
//! s.digit(j) = t.digit(j)       for every j != l
//! ```
//!
//! so every edge *pins* digit `l` of both endpoints and *equates* all
//! their other digits. Digit `j` of any switch is therefore uniquely
//! determined: level-`j` and level-`(j+1)` switches read it off their own
//! port numbers, and every other level inherits it along equality chains
//! that never cross the `j`/`j+1` boundary. Node labels follow from their
//! leaf switch (`p_0..p_{n-2}` = the leaf's digits, `p_{n-1}` = attach
//! port − 1).
//!
//! The recovery below runs the resulting constraint propagation to a
//! fixpoint and reports any inconsistency — which is exactly what "this
//! graph is not an `IBFT(m, n)`" means.

use crate::{DiscoveredTopology, Edge};
use ibfat_topology::{DeviceKind, Level, NodeLabel, SwitchLabel, TreeParams};
use std::collections::VecDeque;
use std::fmt;

/// Why a graph failed to be recognized as an m-port n-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecognitionError {
    /// No switches / no nodes / empty sweep.
    Empty,
    /// Switch port counts differ (fat trees here are fixed-arity).
    MixedRadix { seen: u8, expected: u8 },
    /// The radix is odd or not a power of two.
    BadRadix(u8),
    /// Level layering failed (a switch sits at two distances from the
    /// leaf layer, or an edge skips levels).
    Layering(String),
    /// Device or cable counts do not match the `FT(m, n)` closed forms.
    Counts(String),
    /// Digit constraint propagation found a conflict.
    Inconsistent(String),
    /// Some digit could not be determined (disconnected constraints —
    /// possible on degraded fabrics).
    Undetermined { switch: usize, digit: usize },
    /// A recovered label failed validation, or two devices claimed the
    /// same label.
    BadLabel(String),
}

impl fmt::Display for RecognitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecognitionError::Empty => write!(f, "nothing discovered"),
            RecognitionError::MixedRadix { seen, expected } => {
                write!(f, "switch with {seen} ports in a {expected}-port fabric")
            }
            RecognitionError::BadRadix(m) => write!(f, "{m} ports is not a power of two"),
            RecognitionError::Layering(s) => write!(f, "level layering failed: {s}"),
            RecognitionError::Counts(s) => write!(f, "count mismatch: {s}"),
            RecognitionError::Inconsistent(s) => write!(f, "conflicting digits: {s}"),
            RecognitionError::Undetermined { switch, digit } => {
                write!(
                    f,
                    "digit {digit} of discovered switch {switch} undetermined"
                )
            }
            RecognitionError::BadLabel(s) => write!(f, "bad label: {s}"),
        }
    }
}

impl std::error::Error for RecognitionError {}

/// A recognized fabric: parameters plus the recovered label of every
/// discovered device (indexed by discovery order).
#[derive(Debug, Clone)]
pub struct RecoveredFatTree {
    /// The inferred `(m, n)`.
    pub params: TreeParams,
    /// `switch_labels[i]` for discovered device `i` (None for nodes).
    pub switch_labels: Vec<Option<SwitchLabel>>,
    /// `node_labels[i]` for discovered device `i` (None for switches).
    pub node_labels: Vec<Option<NodeLabel>>,
}

/// Recognize a discovered graph as an `IBFT(m, n)` and recover labels.
pub fn recognize(disc: &DiscoveredTopology) -> Result<RecoveredFatTree, RecognitionError> {
    let num_devices = disc.devices.len();
    if num_devices == 0 || disc.switches().next().is_none() || disc.nodes().next().is_none() {
        return Err(RecognitionError::Empty);
    }

    // --- radix ---------------------------------------------------------
    let m = disc.devices[disc.switches().next().expect("has switches")].num_ports;
    for s in disc.switches() {
        let ports = disc.devices[s].num_ports;
        if ports != m {
            return Err(RecognitionError::MixedRadix {
                seen: ports,
                expected: m,
            });
        }
    }
    if m < 2 || !m.is_power_of_two() {
        return Err(RecognitionError::BadRadix(m));
    }
    let half = u32::from(m) / 2;

    let adj = disc.adjacency();

    // --- level layering --------------------------------------------------
    // Leaves are node-adjacent; in a fat tree every switch's undirected
    // BFS distance to the leaf layer equals its height above it (climbing
    // only ever moves away from the leaves), so multi-source BFS layers
    // the whole fabric without knowing port directions yet.
    let mut layer = vec![usize::MAX; num_devices]; // 0 = leaf layer
    let mut queue = VecDeque::new();
    for s in disc.switches() {
        let node_adjacent = adj[s]
            .iter()
            .any(|&(_, peer, _)| disc.devices[peer].kind == DeviceKind::Node);
        if node_adjacent {
            layer[s] = 0;
            queue.push_back(s);
        }
    }
    if queue.is_empty() {
        return Err(RecognitionError::Layering("no leaf switches".into()));
    }
    while let Some(s) = queue.pop_front() {
        for &(_, peer, _) in &adj[s] {
            if disc.devices[peer].kind != DeviceKind::Switch {
                continue;
            }
            if layer[peer] == usize::MAX {
                layer[peer] = layer[s] + 1;
                queue.push_back(peer);
            }
        }
    }
    let n = disc
        .switches()
        .map(|s| layer[s])
        .max()
        .expect("has switches")
        + 1;
    for s in disc.switches() {
        if layer[s] == usize::MAX {
            return Err(RecognitionError::Layering(format!(
                "switch {s} unreachable from the leaf layer"
            )));
        }
    }
    // layer counts from the leaves; the paper's level counts from the
    // roots: level = n - 1 - layer.
    let level_of = |s: usize| n - 1 - layer[s];

    let params = TreeParams::new(u32::from(m), n as u32)
        .map_err(|e| RecognitionError::Counts(e.to_string()))?;

    // --- counts ----------------------------------------------------------
    let num_nodes = disc.nodes().count() as u32;
    let num_switches = disc.switches().count() as u32;
    if num_nodes != params.num_nodes() || num_switches != params.num_switches() {
        return Err(RecognitionError::Counts(format!(
            "{num_nodes} nodes / {num_switches} switches, {params} needs {} / {}",
            params.num_nodes(),
            params.num_switches()
        )));
    }
    if disc.edges.len() != num_nodes as usize + inter_switch_links(params) {
        return Err(RecognitionError::Counts(format!(
            "{} cables, {params} needs {}",
            disc.edges.len(),
            num_nodes as usize + inter_switch_links(params)
        )));
    }

    // --- digit constraint propagation ------------------------------------
    let digits_len = params.switch_digits();
    const UNKNOWN: u8 = u8::MAX;
    let mut digits = vec![vec![UNKNOWN; digits_len]; num_devices];

    let set_digit = |digits: &mut Vec<Vec<u8>>, dev: usize, pos: usize, val: u8| {
        let slot = &mut digits[dev][pos];
        if *slot == UNKNOWN {
            *slot = val;
            Ok(true)
        } else if *slot == val {
            Ok(false)
        } else {
            Err(RecognitionError::Inconsistent(format!(
                "switch {dev} digit {pos}: {} vs {val}",
                *slot
            )))
        }
    };

    // Orient each inter-switch edge as (parent, down-port, child, up-port).
    let mut oriented: Vec<(usize, u8, usize, u8)> = Vec::new();
    for &Edge {
        a,
        a_port,
        b,
        b_port,
    } in &disc.edges
    {
        if disc.devices[a].kind != DeviceKind::Switch || disc.devices[b].kind != DeviceKind::Switch
        {
            continue;
        }
        let (parent, down, child, up) = if level_of(a) + 1 == level_of(b) {
            (a, a_port.0, b, b_port.0)
        } else if level_of(b) + 1 == level_of(a) {
            (b, b_port.0, a, a_port.0)
        } else {
            return Err(RecognitionError::Layering(format!(
                "cable between layers {} and {}",
                layer[a], layer[b]
            )));
        };
        if u32::from(up.saturating_sub(1)) < half {
            return Err(RecognitionError::Layering(format!(
                "child {child} uses down-port {up} to reach its parent"
            )));
        }
        oriented.push((parent, down, child, up));
    }

    // Seed the pinned digits, then propagate equalities to a fixpoint.
    if digits_len > 0 {
        for &(parent, down, child, up) in &oriented {
            let l = level_of(parent); // the rewritten digit position
            set_digit(&mut digits, child, l, down - 1)?;
            set_digit(&mut digits, parent, l, (u32::from(up) - half - 1) as u8)?;
        }
        loop {
            let mut changed = false;
            for &(parent, _, child, _) in &oriented {
                let l = level_of(parent);
                for j in 0..digits_len {
                    if j == l {
                        continue;
                    }
                    match (digits[parent][j], digits[child][j]) {
                        (UNKNOWN, UNKNOWN) => {}
                        (v, UNKNOWN) => changed |= set_digit(&mut digits, child, j, v)?,
                        (UNKNOWN, v) => changed |= set_digit(&mut digits, parent, j, v)?,
                        (u, v) if u == v => {}
                        (u, v) => {
                            return Err(RecognitionError::Inconsistent(format!(
                                "edge {parent}-{child} digit {j}: {u} vs {v}"
                            )))
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // --- assemble labels ---------------------------------------------------
    let mut switch_labels = vec![None; num_devices];
    let mut node_labels = vec![None; num_devices];
    let mut seen_switch = vec![false; params.num_switches() as usize];
    let mut seen_node = vec![false; params.num_nodes() as usize];

    for s in disc.switches() {
        for (pos, &d) in digits[s].iter().enumerate() {
            if d == UNKNOWN {
                return Err(RecognitionError::Undetermined {
                    switch: s,
                    digit: pos,
                });
            }
        }
        let label = SwitchLabel::new(params, &digits[s], Level(level_of(s) as u8))
            .map_err(|e| RecognitionError::BadLabel(e.to_string()))?;
        let id = label.id(params);
        if std::mem::replace(&mut seen_switch[id.index()], true) {
            return Err(RecognitionError::BadLabel(format!(
                "two switches recovered as {label}"
            )));
        }
        switch_labels[s] = Some(label);
    }

    for node in disc.nodes() {
        let &(_, leaf, leaf_port) = adj[node]
            .first()
            .ok_or_else(|| RecognitionError::Layering(format!("node {node} uncabled")))?;
        if disc.devices[leaf].kind != DeviceKind::Switch || level_of(leaf) != n - 1 {
            return Err(RecognitionError::Layering(format!(
                "node {node} attached above the leaf level"
            )));
        }
        let mut p = Vec::with_capacity(params.node_digits());
        p.extend_from_slice(&digits[leaf]);
        p.push(leaf_port.0 - 1);
        let label =
            NodeLabel::new(params, &p).map_err(|e| RecognitionError::BadLabel(e.to_string()))?;
        let id = label.id(params);
        if std::mem::replace(&mut seen_node[id.index()], true) {
            return Err(RecognitionError::BadLabel(format!(
                "two nodes recovered as {label}"
            )));
        }
        node_labels[node] = Some(label);
    }

    Ok(RecoveredFatTree {
        params,
        switch_labels,
        node_labels,
    })
}

fn inter_switch_links(params: TreeParams) -> usize {
    let mut total = 0u64;
    for l in 1..params.n() {
        total += u64::from(params.switches_at_level(l)) * u64::from(params.half());
    }
    total as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discover;
    use ibfat_topology::{DeviceRef, Network, NodeId, SwitchId};

    fn recover(m: u32, n: u32) -> (Network, DiscoveredTopology, RecoveredFatTree) {
        let net = Network::mport_ntree(TreeParams::new(m, n).unwrap());
        let disc = discover(&net, NodeId(0));
        let rec = recognize(&disc).unwrap_or_else(|e| panic!("IBFT({m},{n}): {e}"));
        (net, disc, rec)
    }

    #[test]
    fn recovers_parameters() {
        for (m, n) in [(4, 2), (4, 3), (8, 2), (8, 3), (16, 2), (2, 3), (4, 1)] {
            let (net, _, rec) = recover(m, n);
            assert_eq!(rec.params, net.params(), "IBFT({m},{n})");
        }
    }

    #[test]
    fn recovered_labels_match_construction_labels() {
        // The recovered label of every device must equal the label it was
        // constructed with — label recovery is exact, not just consistent.
        for (m, n) in [(4, 2), (4, 3), (8, 2), (16, 2)] {
            let (net, disc, rec) = recover(m, n);
            let params = net.params();
            for (i, dev) in disc.devices.iter().enumerate() {
                match dev.handle {
                    DeviceRef::Switch(id) => {
                        let truth = SwitchLabel::from_id(params, id);
                        assert_eq!(
                            rec.switch_labels[i],
                            Some(truth),
                            "IBFT({m},{n}) switch {id}"
                        );
                    }
                    DeviceRef::Node(id) => {
                        let truth = NodeLabel::from_id(params, id);
                        assert_eq!(rec.node_labels[i], Some(truth), "IBFT({m},{n}) node {id}");
                    }
                }
            }
        }
    }

    #[test]
    fn recovery_is_independent_of_sweep_origin() {
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        for start in [0u32, 5, 15] {
            let disc = discover(&net, NodeId(start));
            let rec = recognize(&disc).unwrap();
            for (i, dev) in disc.devices.iter().enumerate() {
                if let DeviceRef::Switch(id) = dev.handle {
                    assert_eq!(
                        rec.switch_labels[i],
                        Some(SwitchLabel::from_id(net.params(), id)),
                        "start {start}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_non_fat_trees() {
        // Remove one inter-switch cable: the counts no longer match.
        let mut net = Network::mport_ntree(TreeParams::new(4, 2).unwrap());
        let idx = net.inter_switch_link_indices()[0];
        net.remove_link(idx);
        let disc = discover(&net, NodeId(0));
        assert!(matches!(recognize(&disc), Err(RecognitionError::Counts(_))));
    }

    #[test]
    fn rejects_miswired_fat_trees() {
        // Swap two leaves' node attachments by rebuilding edges by hand:
        // simplest corruption — swap the port numbers in one discovered
        // edge, which breaks the digit constraints or label uniqueness.
        let net = Network::mport_ntree(TreeParams::new(4, 3).unwrap());
        let mut disc = discover(&net, NodeId(0));
        let e = disc
            .edges
            .iter()
            .position(|e| {
                disc.devices[e.a].kind == DeviceKind::Switch
                    && disc.devices[e.b].kind == DeviceKind::Switch
            })
            .unwrap();
        // Point the parent's down-port elsewhere (shift by one, mod m/2).
        let old = disc.edges[e];
        let (down_side_port, is_a) = if old.a_port.0 > 2 {
            (old.b_port, false)
        } else {
            (old.a_port, true)
        };
        let new_port = ibfat_topology::PortNum(down_side_port.0 % 2 + 1);
        if is_a {
            disc.edges[e].a_port = new_port;
        } else {
            disc.edges[e].b_port = new_port;
        }
        assert!(recognize(&disc).is_err());
        let _ = SwitchId(0);
    }

    #[test]
    fn empty_and_degenerate_graphs_are_rejected() {
        let disc = DiscoveredTopology {
            devices: vec![],
            edges: vec![],
        };
        assert_eq!(recognize(&disc).unwrap_err(), RecognitionError::Empty);
    }
}
