/root/repo/target/debug/examples/collective_phases-428889dd94f8fede.d: examples/collective_phases.rs

/root/repo/target/debug/examples/libcollective_phases-428889dd94f8fede.rmeta: examples/collective_phases.rs

examples/collective_phases.rs:
