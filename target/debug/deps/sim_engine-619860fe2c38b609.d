/root/repo/target/debug/deps/sim_engine-619860fe2c38b609.d: crates/bench/benches/sim_engine.rs

/root/repo/target/debug/deps/libsim_engine-619860fe2c38b609.rmeta: crates/bench/benches/sim_engine.rs

crates/bench/benches/sim_engine.rs:
