//! # ib-fabric
//!
//! High-level API for building fat-tree InfiniBand fabrics, programming
//! their forwarding tables with the MLID or SLID schemes of Lin, Chung and
//! Huang (IPDPS 2004), and running discrete-event simulations of the
//! result.
//!
//! The crate stitches together the three substrates:
//!
//! * [`ibfat_topology`] — the m-port n-tree construction `IBFT(m, n)`;
//! * [`ibfat_routing`] — LID addressing, path selection and forwarding
//!   tables (MLID / SLID / up*/down*), plus verification passes;
//! * [`ibfat_sim`] — the IBA subnet simulator (virtual lanes, credit-based
//!   flow control, virtual cut-through).
//!
//! ## Quickstart
//!
//! ```
//! use ib_fabric::prelude::*;
//!
//! // A 64-node fat tree of 8-port switches, routed with multiple LIDs.
//! let fabric = Fabric::builder(8, 3)
//!     .routing(RoutingKind::Mlid)
//!     .build()
//!     .unwrap();
//! assert_eq!(fabric.num_nodes(), 128);
//!
//! // Where does a packet go?
//! let route = fabric.route(NodeId(0), NodeId(100)).unwrap();
//! assert_eq!(route.num_links(), 6);
//!
//! // Simulate uniform traffic at 30% load with 2 virtual lanes.
//! let report = fabric
//!     .experiment()
//!     .virtual_lanes(2)
//!     .traffic(TrafficPattern::Uniform)
//!     .offered_load(0.3)
//!     .duration_ns(100_000)
//!     .run();
//! assert!(report.delivered > 0);
//! ```

mod builder;
mod experiment;

pub use builder::{Fabric, FabricBuilder, FabricError};
pub use experiment::ExperimentBuilder;

// Re-export the substrate crates wholesale for advanced use…
pub use ibfat_routing as routing;
pub use ibfat_sim as sim;
pub use ibfat_sm as sm;
pub use ibfat_topology as topology;

// …and the everyday names at the top level.
pub use ibfat_routing::{
    all_to_all_loads, all_to_all_loads_oracle, build_fault_tolerant, loads_for_matrix,
    ChannelLoads, Lft, Lid, LidSpace, Route, RouteOracle, Routing, RoutingError, RoutingKind,
};
pub use ibfat_sim::{
    aggregate, disruption_report, generators, json, traces_to_jsonl, workload_trace, Aggregate,
    ClosedLoopKind, CongestionView, DisruptionReport, EngineTelemetry, FabricCounters, FaultAction,
    FaultEvent, FaultPlan, FaultPolicy, FaultSummary, HotPort, InjectionProcess, LevelLoad,
    LinkUse, NoopProbe, PacketTrace, ParProbe, PartitionKind, PathSelection, PathSurvival, Phase,
    PhaseProfile, Probe, RouteBackend, RunSpec, ShardTelemetry, SimConfig, SimReport, TraceEvent,
    TraceSampling, TrafficPattern, VlArbitration, VlAssignment, WindowPolicy, Workload,
    WorkloadReport,
};
pub use ibfat_sm::SubnetManager;
pub use ibfat_topology::{
    Network, NodeId, NodeLabel, PortNum, SwitchId, SwitchLabel, TopologyError, TreeParams,
};

/// Convenient glob import: `use ib_fabric::prelude::*;`.
pub mod prelude {
    pub use crate::{
        ChannelLoads, Fabric, FabricBuilder, FabricCounters, FabricError, InjectionProcess, Lid,
        Network, NodeId, NodeLabel, PathSelection, PhaseProfile, Probe, RouteBackend, RouteOracle,
        Routing, RoutingKind, SimConfig, SimReport, SubnetManager, SwitchLabel, TrafficPattern,
        TreeParams, VlArbitration, VlAssignment, Workload, WorkloadReport,
    };
}
