/root/repo/target/debug/deps/ibfat_sm-270e572e916a4aae.d: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

/root/repo/target/debug/deps/ibfat_sm-270e572e916a4aae: crates/sm/src/lib.rs crates/sm/src/discovery.rs crates/sm/src/mad.rs crates/sm/src/manager.rs crates/sm/src/recognize.rs

crates/sm/src/lib.rs:
crates/sm/src/discovery.rs:
crates/sm/src/mad.rs:
crates/sm/src/manager.rs:
crates/sm/src/recognize.rs:
