use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense id of a processing node (end node). Node ids coincide with the
/// paper's `PID` ordering: `NodeId(i)` is the node whose rank in
/// `gcpg(ε, 0)` — the group of all processing nodes — is `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Dense id of a switch, level-major: all level-0 switches first (roots),
/// then level 1, and so on down to the leaf level `n-1`. Within a level,
/// switches are ordered by their digit string read as a mixed-radix number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// An InfiniBand switch port number. Port 0 is the management port and never
/// carries subnet traffic here; external ports are numbered `1..=m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortNum(pub u8);

/// A level in the tree: 0 for the roots, `n-1` for the leaf switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Level(pub u8);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SwitchId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortNum {
    /// The port number as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Level {
    /// The level as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for PortNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "N3");
        assert_eq!(SwitchId(7).to_string(), "S7");
        assert_eq!(PortNum(1).to_string(), "p1");
        assert_eq!(Level(0).to_string(), "L0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(SwitchId(0) < SwitchId(10));
    }
}
