/root/repo/target/debug/deps/ibfat_sim-f7e48aad172fb607.d: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

/root/repo/target/debug/deps/libibfat_sim-f7e48aad172fb607.rlib: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

/root/repo/target/debug/deps/libibfat_sim-f7e48aad172fb607.rmeta: crates/sim/src/lib.rs crates/sim/src/bounds.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/metrics.rs crates/sim/src/packet.rs crates/sim/src/runner.rs crates/sim/src/sim.rs crates/sim/src/trace.rs crates/sim/src/traffic.rs crates/sim/src/vlarb.rs

crates/sim/src/lib.rs:
crates/sim/src/bounds.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/metrics.rs:
crates/sim/src/packet.rs:
crates/sim/src/runner.rs:
crates/sim/src/sim.rs:
crates/sim/src/trace.rs:
crates/sim/src/traffic.rs:
crates/sim/src/vlarb.rs:
