/root/repo/target/debug/examples/subnet_manager-ffe08ba6107f9e90.d: examples/subnet_manager.rs

/root/repo/target/debug/examples/subnet_manager-ffe08ba6107f9e90: examples/subnet_manager.rs

examples/subnet_manager.rs:
