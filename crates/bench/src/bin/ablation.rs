//! Ablation study over the simulator's design knobs, keyed to the design
//! choices DESIGN.md calls out: buffer depth (the paper fixes one packet
//! per VL), packet size (256 B), injection process (deterministic), and
//! the routing scheme itself, all at a fixed operating point.
//!
//! ```text
//! cargo run --release -p bench --bin ablation -- [--config MxN] [--load L]
//! ```

use ib_fabric::prelude::*;

#[allow(clippy::too_many_arguments)] // a flat knob list reads best here
fn run(
    m: u32,
    n: u32,
    kind: RoutingKind,
    vls: u8,
    buffers: u8,
    bytes: u32,
    injection: InjectionProcess,
    load: f64,
    pattern: &TrafficPattern,
) -> SimReport {
    let fabric = Fabric::builder(m, n).routing(kind).build().expect("valid");
    fabric
        .experiment()
        .virtual_lanes(vls)
        .buffer_packets(buffers)
        .packet_bytes(bytes)
        .injection(injection)
        .traffic(pattern.clone())
        .offered_load(load)
        .duration_ns(200_000)
        .run()
}

fn main() {
    let mut m = 8;
    let mut n = 2;
    let mut load = 0.8;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let v = it
            .next()
            .unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--config" => {
                let (a, b) = v.split_once(['x', 'X']).expect("MxN");
                m = a.parse().expect("ports");
                n = b.parse().expect("levels");
            }
            "--load" => load = v.parse().expect("load"),
            other => panic!("unknown flag {other}"),
        }
    }

    println!(
        "Ablations on {m}-port {n}-tree at offered load {load} (uniform traffic unless noted)\n"
    );
    let header = format!(
        "{:<34} {:>18} {:>14}",
        "variant", "accepted(B/ns/nd)", "avg-lat(ns)"
    );

    let uni = TrafficPattern::Uniform;
    let hot = TrafficPattern::paper_centric();
    let det = InjectionProcess::Deterministic;

    println!("-- buffer depth (paper: 1 packet per VL) --\n{header}");
    for buffers in [1u8, 2, 4, 8] {
        let r = run(m, n, RoutingKind::Mlid, 1, buffers, 256, det, load, &uni);
        println!(
            "{:<34} {:>18.4} {:>14.1}",
            format!("MLID VL1 buffers={buffers}"),
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns()
        );
    }

    println!("\n-- packet size (paper: 256 bytes) --\n{header}");
    for bytes in [64u32, 128, 256, 512, 1024] {
        let r = run(m, n, RoutingKind::Mlid, 1, 1, bytes, det, load, &uni);
        println!(
            "{:<34} {:>18.4} {:>14.1}",
            format!("MLID VL1 packet={bytes}B"),
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns()
        );
    }

    println!("\n-- injection process (paper: deterministic) --\n{header}");
    for (name, inj) in [
        ("deterministic", InjectionProcess::Deterministic),
        ("poisson", InjectionProcess::Poisson),
    ] {
        let r = run(m, n, RoutingKind::Mlid, 1, 1, 256, inj, load, &uni);
        println!(
            "{:<34} {:>18.4} {:>14.1}",
            format!("MLID VL1 {name}"),
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns()
        );
    }

    println!("\n-- routing scheme under 50%-centric traffic --\n{header}");
    for kind in [RoutingKind::Slid, RoutingKind::Mlid, RoutingKind::UpDown] {
        for vls in [1u8, 2] {
            let r = run(m, n, kind, vls, 1, 256, det, load, &hot);
            println!(
                "{:<34} {:>18.4} {:>14.1}",
                format!("{} VL{vls} centric50", kind.as_str().to_uppercase()),
                r.accepted_bytes_per_ns_per_node,
                r.avg_latency_ns()
            );
        }
    }

    // The paper fixes one DLID per (source, destination) pair via the
    // source's subgroup rank ("there exists a one-to-one mapping"). The
    // alternatives break the upward-exclusivity property (and would
    // reorder packets in real InfiniBand).
    println!("\n-- MLID path-selection policy (VL1, uniform) --\n{header}");
    for (name, policy) in [
        ("paper rank", ib_fabric::PathSelection::Paper),
        (
            "random per packet",
            ib_fabric::PathSelection::RandomPerPacket,
        ),
        (
            "round-robin per source",
            ib_fabric::PathSelection::RoundRobinPerSource,
        ),
    ] {
        let fabric = Fabric::builder(m, n)
            .routing(RoutingKind::Mlid)
            .build()
            .expect("valid");
        let r = fabric
            .experiment()
            .path_selection(policy)
            .offered_load(load)
            .duration_ns(200_000)
            .run();
        println!(
            "{:<34} {:>18.4} {:>14.1}",
            format!("MLID VL1 {name}"),
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns()
        );
    }

    // VL assignment under the hot spot: confining the hot flows to one
    // lane isolates their head-of-line blocking.
    println!("\n-- VL assignment under centric50 (VL4) --\n{header}");
    for (name, policy) in [
        ("random", ib_fabric::VlAssignment::Random),
        ("by destination", ib_fabric::VlAssignment::DestinationHash),
        ("by source", ib_fabric::VlAssignment::SourceHash),
    ] {
        let fabric = Fabric::builder(m, n)
            .routing(RoutingKind::Mlid)
            .build()
            .expect("valid");
        let r = fabric
            .experiment()
            .virtual_lanes(4)
            .vl_assignment(policy)
            .traffic(hot.clone())
            .offered_load(load)
            .duration_ns(200_000)
            .run();
        println!(
            "{:<34} {:>18.4} {:>14.1}",
            format!("MLID VL4 {name}"),
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns()
        );
    }

    // What deterministic LFT routing gives up: per-packet adaptive
    // up-port selection (impossible in IBA switches, which forward purely
    // by table lookup) against the paper's deterministic tables. Adaptive
    // reorders flows — the out-of-order column shows the price.
    println!("\n-- deterministic tables vs adaptive climbing (VL1) --");
    println!(
        "{:<34} {:>18} {:>14} {:>14}",
        "variant", "accepted(B/ns/nd)", "avg-lat(ns)", "out-of-order"
    );
    for (name, adaptive, pattern) in [
        ("MLID deterministic uniform", false, &uni),
        ("MLID adaptive uniform", true, &uni),
        ("MLID deterministic centric50", false, &hot),
        ("MLID adaptive centric50", true, &hot),
    ] {
        let fabric = Fabric::builder(m, n)
            .routing(RoutingKind::Mlid)
            .build()
            .expect("valid");
        let r = fabric
            .experiment()
            .adaptive_up(adaptive)
            .traffic(pattern.clone())
            .offered_load(load)
            .duration_ns(200_000)
            .run();
        println!(
            "{:<34} {:>18.4} {:>14.1} {:>14}",
            name,
            r.accepted_bytes_per_ns_per_node,
            r.avg_latency_ns(),
            r.out_of_order
        );
    }

    // The OCR of the paper lost the hot-spot percentage ("·0 out of ·00
    // packets"); 50% is the literal best fit but 10–30% are equally
    // consistent. This sweep shows the reconstruction is robust: MLID
    // leads SLID at every fraction.
    println!("\n-- hot-spot fraction sensitivity (VL1) --\n{header}");
    for frac in [0.1, 0.2, 0.3, 0.5] {
        let pattern = TrafficPattern::Centric {
            hotspot: NodeId(0),
            fraction: frac,
        };
        for kind in [RoutingKind::Slid, RoutingKind::Mlid] {
            let r = run(m, n, kind, 1, 1, 256, det, load, &pattern);
            println!(
                "{:<34} {:>18.4} {:>14.1}",
                format!(
                    "{} VL1 centric{}",
                    kind.as_str().to_uppercase(),
                    (frac * 100.0) as u32
                ),
                r.accepted_bytes_per_ns_per_node,
                r.avg_latency_ns()
            );
        }
    }
}
