/root/repo/target/debug/deps/paper_examples-fdda7d6cf3d033e3.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-fdda7d6cf3d033e3: tests/paper_examples.rs

tests/paper_examples.rs:
