/root/repo/target/debug/deps/persistence-d46527d6f261c570.d: crates/core/tests/persistence.rs

/root/repo/target/debug/deps/persistence-d46527d6f261c570: crates/core/tests/persistence.rs

crates/core/tests/persistence.rs:
