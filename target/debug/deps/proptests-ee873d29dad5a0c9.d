/root/repo/target/debug/deps/proptests-ee873d29dad5a0c9.d: crates/routing/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ee873d29dad5a0c9: crates/routing/tests/proptests.rs

crates/routing/tests/proptests.rs:
