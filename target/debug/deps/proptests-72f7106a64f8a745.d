/root/repo/target/debug/deps/proptests-72f7106a64f8a745.d: crates/sm/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-72f7106a64f8a745.rmeta: crates/sm/tests/proptests.rs Cargo.toml

crates/sm/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
