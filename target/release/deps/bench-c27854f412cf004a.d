/root/repo/target/release/deps/bench-c27854f412cf004a.d: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/release/deps/libbench-c27854f412cf004a.rlib: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

/root/repo/target/release/deps/libbench-c27854f412cf004a.rmeta: crates/bench/src/lib.rs crates/bench/src/trajectory.rs

crates/bench/src/lib.rs:
crates/bench/src/trajectory.rs:
