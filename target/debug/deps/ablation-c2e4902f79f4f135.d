/root/repo/target/debug/deps/ablation-c2e4902f79f4f135.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-c2e4902f79f4f135.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
